#include "runtime/sim_clock.h"

#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace flinkless::runtime {

std::string ChargeName(Charge c) {
  switch (c) {
    case Charge::kCompute:
      return "compute";
    case Charge::kNetwork:
      return "network";
    case Charge::kCheckpointIo:
      return "checkpoint_io";
    case Charge::kRecovery:
      return "recovery";
  }
  return "?";
}

void SimClock::Add(Charge c, int64_t ns) {
  FLINKLESS_CHECK(ns >= 0, "negative simulated-time charge");
  ns_[static_cast<int>(c)] += ns;
}

int64_t SimClock::Of(Charge c) const { return ns_[static_cast<int>(c)]; }

int64_t SimClock::TotalNs() const {
  int64_t total = 0;
  for (int64_t v : ns_) total += v;
  return total;
}

void SimClock::Reset() { ns_.fill(0); }

std::string SimClock::Summary() const {
  std::string out = "sim_total=" + FormatDouble(TotalMs()) + "ms (";
  for (int i = 0; i < kNumCharges; ++i) {
    if (i) out += ", ";
    out += ChargeName(static_cast<Charge>(i)) + "=" +
           FormatDouble(static_cast<double>(ns_[i]) / 1e6) + "ms";
  }
  out += ")";
  return out;
}

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WallTimer::WallTimer() : start_ns_(NowNs()) {}

int64_t WallTimer::ElapsedNs() const { return NowNs() - start_ns_; }

void WallTimer::Restart() { start_ns_ = NowNs(); }

}  // namespace flinkless::runtime
