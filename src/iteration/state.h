// Iteration state containers.
//
// The intermediate state of an iterative job is partitioned across the
// cluster; a failure destroys some partitions of it, a checkpoint serializes
// all of it, a compensation function rebuilds the lost pieces. IterationState
// is the partition-structured interface those mechanisms share; BulkState and
// DeltaState are the two shapes Flink-style iterations use (paper §2.1).

#ifndef FLINKLESS_ITERATION_STATE_H_
#define FLINKLESS_ITERATION_STATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/dataset.h"
#include "dataflow/record.h"
#include "runtime/thread_pool.h"

namespace flinkless::iteration {

/// Which iteration mode a state belongs to.
enum class StateKind { kBulk, kDelta };

/// Partition-structured iteration state: the contract between the iteration
/// drivers and the fault-tolerance policies.
class IterationState {
 public:
  virtual ~IterationState() = default;

  virtual StateKind kind() const = 0;
  virtual int num_partitions() const = 0;

  /// Serialized snapshot of one partition (checkpoint granularity).
  virtual std::vector<uint8_t> SerializePartition(int p) const = 0;

  /// Replaces partition `p` from a snapshot produced by SerializePartition.
  virtual Status RestorePartition(int p, const std::vector<uint8_t>& blob) = 0;

  /// Destroys partition `p` — the effect of the task holding it crashing.
  virtual void ClearPartition(int p) = 0;

  /// Serialized size of one partition (what checkpointing it would cost).
  virtual uint64_t PartitionByteSize(int p) const = 0;
};

/// Bulk-iteration state: the whole intermediate dataset, recomputed each
/// superstep (e.g. the PageRank rank vector).
class BulkState final : public IterationState {
 public:
  BulkState() = default;
  explicit BulkState(dataflow::PartitionedDataset data)
      : data_(std::move(data)) {}

  StateKind kind() const override { return StateKind::kBulk; }
  int num_partitions() const override { return data_.num_partitions(); }
  std::vector<uint8_t> SerializePartition(int p) const override;
  Status RestorePartition(int p, const std::vector<uint8_t>& blob) override;
  void ClearPartition(int p) override { data_.ClearPartition(p); }
  uint64_t PartitionByteSize(int p) const override;

  dataflow::PartitionedDataset& data() { return data_; }
  const dataflow::PartitionedDataset& data() const { return data_; }

 private:
  dataflow::PartitionedDataset data_;
};

/// The indexed solution set of a delta iteration: per partition, a map from
/// key projection to the full record, co-partitioned by hash of the key.
class SolutionSet {
 public:
  SolutionSet() = default;
  SolutionSet(int num_partitions, dataflow::KeyColumns key);

  /// Builds a solution set from initial records.
  static SolutionSet FromRecords(std::vector<dataflow::Record> records,
                                 const dataflow::KeyColumns& key,
                                 int num_partitions);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const dataflow::KeyColumns& key() const { return key_; }

  /// Inserts or replaces the entry with `record`'s key. Returns true when an
  /// existing entry was replaced.
  bool Upsert(dataflow::Record record);

  /// The record with the given key projection, or nullptr.
  const dataflow::Record* Lookup(const dataflow::Record& key_projection) const;

  /// Entries of one partition in key order.
  std::vector<dataflow::Record> PartitionRecords(int p) const;

  /// Monotonic modification counter: bumped by every Upsert (and by
  /// ReplacePartition per record). Lets incremental checkpointing ask
  /// "what changed since version v".
  uint64_t version() const { return version_; }

  /// Entries of partition `p` modified strictly after `since_version`, in
  /// key order. EntriesSince(p, 0) returns the whole partition.
  std::vector<dataflow::Record> EntriesSince(int p,
                                             uint64_t since_version) const;

  /// Total entries across partitions.
  uint64_t NumEntries() const;

  /// Materializes the solution set as a dataset (bound into the step plan
  /// each superstep). Partitions materialize in parallel on `pool` when one
  /// is given; the result is identical either way.
  dataflow::PartitionedDataset ToDataset(
      runtime::ThreadPool* pool = nullptr) const;

  void ClearPartition(int p) { parts_[p].clear(); }

  /// Replaces the contents of partition `p` with `records` (entries keyed by
  /// their key projection). Records whose hash does not map to `p` are a
  /// programming error.
  Status ReplacePartition(int p, std::vector<dataflow::Record> records);

 private:
  struct Entry {
    dataflow::Record record;
    /// Value of version_ when this entry was last written.
    uint64_t version = 0;
  };
  using PartitionMap =
      std::map<dataflow::Record, Entry, dataflow::RecordOrder>;
  dataflow::KeyColumns key_;
  std::vector<PartitionMap> parts_;
  uint64_t version_ = 0;
};

/// Delta-iteration state: solution set + working set (paper §2.1). A failure
/// loses both pieces of the affected partitions.
class DeltaState final : public IterationState {
 public:
  DeltaState() = default;
  DeltaState(SolutionSet solution, dataflow::PartitionedDataset workset)
      : solution_(std::move(solution)), workset_(std::move(workset)) {}

  StateKind kind() const override { return StateKind::kDelta; }
  int num_partitions() const override { return solution_.num_partitions(); }
  std::vector<uint8_t> SerializePartition(int p) const override;
  Status RestorePartition(int p, const std::vector<uint8_t>& blob) override;
  void ClearPartition(int p) override;
  uint64_t PartitionByteSize(int p) const override;

  SolutionSet& solution() { return solution_; }
  const SolutionSet& solution() const { return solution_; }
  dataflow::PartitionedDataset& workset() { return workset_; }
  const dataflow::PartitionedDataset& workset() const { return workset_; }

 private:
  SolutionSet solution_;
  dataflow::PartitionedDataset workset_;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_STATE_H_
