// Iteration state containers.
//
// The intermediate state of an iterative job is partitioned across the
// cluster; a failure destroys some partitions of it, a checkpoint serializes
// all of it, a compensation function rebuilds the lost pieces. IterationState
// is the partition-structured interface those mechanisms share; BulkState and
// DeltaState are the two shapes Flink-style iterations use (paper §2.1).

#ifndef FLINKLESS_ITERATION_STATE_H_
#define FLINKLESS_ITERATION_STATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/dataset.h"
#include "dataflow/record.h"
#include "runtime/thread_pool.h"
#include "runtime/tracing.h"

namespace flinkless::iteration {

/// Which iteration mode a state belongs to.
enum class StateKind { kBulk, kDelta };

/// Partition-structured iteration state: the contract between the iteration
/// drivers and the fault-tolerance policies.
class IterationState {
 public:
  virtual ~IterationState() = default;

  virtual StateKind kind() const = 0;
  virtual int num_partitions() const = 0;

  /// Serialized snapshot of one partition (checkpoint granularity).
  virtual std::vector<uint8_t> SerializePartition(int p) const = 0;

  /// Replaces partition `p` from a snapshot produced by SerializePartition.
  virtual Status RestorePartition(int p, const std::vector<uint8_t>& blob) = 0;

  /// Destroys partition `p` — the effect of the task holding it crashing.
  virtual void ClearPartition(int p) = 0;

  /// Serialized size of one partition (what checkpointing it would cost).
  virtual uint64_t PartitionByteSize(int p) const = 0;
};

/// Bulk-iteration state: the whole intermediate dataset, recomputed each
/// superstep (e.g. the PageRank rank vector).
///
/// Bounds contract (shared by every IterationState implementation): the
/// Status-returning mutators reject an out-of-range partition with
/// OutOfRange; everything else treats it as a programming error and dies
/// via FLINKLESS_CHECK.
class BulkState final : public IterationState {
 public:
  BulkState() = default;
  explicit BulkState(dataflow::PartitionedDataset data)
      : data_(std::move(data)) {}

  StateKind kind() const override { return StateKind::kBulk; }
  int num_partitions() const override { return data_.num_partitions(); }
  std::vector<uint8_t> SerializePartition(int p) const override;
  Status RestorePartition(int p, const std::vector<uint8_t>& blob) override;
  void ClearPartition(int p) override;
  uint64_t PartitionByteSize(int p) const override;

  dataflow::PartitionedDataset& data() { return data_; }
  const dataflow::PartitionedDataset& data() const { return data_; }

 private:
  dataflow::PartitionedDataset data_;
};

/// The indexed solution set of a delta iteration: per partition, a map from
/// key projection to the full record, co-partitioned by hash of the key.
class SolutionSet {
 public:
  SolutionSet() = default;
  SolutionSet(int num_partitions, dataflow::KeyColumns key);

  /// Builds a solution set from initial records.
  static SolutionSet FromRecords(std::vector<dataflow::Record> records,
                                 const dataflow::KeyColumns& key,
                                 int num_partitions);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const dataflow::KeyColumns& key() const { return key_; }

  /// Inserts or replaces the entry with `record`'s key. Returns true when an
  /// existing entry was replaced. Bumps only the owning partition's clock.
  bool Upsert(dataflow::Record record);

  /// Upsert for a record already known to hash to partition `p` (routing is
  /// a programming error, checked). Touches only that partition's map and
  /// clock, so concurrent calls for *distinct* partitions are safe — the
  /// primitive behind ApplyDelta's partition-parallel phase.
  bool UpsertIntoPartition(int p, dataflow::Record record);

  /// Applies a superstep's delta records: scatter by key hash into
  /// per-partition shards (parallel over source partitions), then every
  /// target partition upserts its own shard against its own version clock
  /// (parallel over targets, traced as a "solution.update" span when a
  /// tracer is given). Application order within a partition is (source
  /// partition, record position) — exactly the serial loop's order — so the
  /// result, including entry versions, is byte-identical at any thread
  /// count. Returns the number of records applied.
  uint64_t ApplyDelta(dataflow::PartitionedDataset delta,
                      runtime::ThreadPool* pool = nullptr,
                      runtime::Tracer* tracer = nullptr);

  /// The record with the given key projection, or nullptr.
  const dataflow::Record* Lookup(const dataflow::Record& key_projection) const;

  /// Entries of one partition in key order.
  std::vector<dataflow::Record> PartitionRecords(int p) const;

  /// Entry count of one partition (no materialization).
  uint64_t PartitionSize(int p) const;

  /// Partition `p`'s modification clock: bumped by every Upsert into it
  /// (and by ReplacePartition per record). Lets incremental checkpointing
  /// ask "what changed in this partition since version v". Clocks of
  /// different partitions are independent — restoring or compensating one
  /// partition never advances another's clock.
  uint64_t version(int p) const;

  /// All partition clocks, indexed by partition.
  std::vector<uint64_t> VersionVector() const;

  /// Entries of partition `p` modified strictly after `since_version` (on
  /// that partition's clock), in key order. EntriesSince(p, 0) returns the
  /// whole partition: live entries always carry versions >= 1.
  std::vector<dataflow::Record> EntriesSince(int p,
                                             uint64_t since_version) const;

  /// Total entries across partitions.
  uint64_t NumEntries() const;

  /// Materializes the solution set as a dataset (bound into the step plan
  /// each superstep). Partitions materialize in parallel on `pool` when one
  /// is given; the result is identical either way.
  dataflow::PartitionedDataset ToDataset(
      runtime::ThreadPool* pool = nullptr) const;

  /// Drops partition `p`'s entries and resets its clock — a destroyed
  /// partition restarts its modification history.
  void ClearPartition(int p);

  /// Fast-forwards partition `p`'s clock to `to` (>= the current clock,
  /// checked) without touching entries. Used after a checkpoint-chain
  /// replay to realign the clock with the value recorded at checkpoint
  /// time, so deltas written after a recovery chain contiguously with the
  /// pre-failure links.
  void FastForwardClock(int p, uint64_t to);

  /// Replaces the contents of partition `p` with `records` (entries keyed by
  /// their key projection). Records whose hash does not map to `p` are a
  /// programming error. The partition's clock restarts: the restored
  /// entries get versions 1..k (so EntriesSince(p, 0) still returns all of
  /// them) and are *older* than any subsequent upsert — a restore or
  /// compensation never marks entries as freshly modified. Version
  /// consumers must resync their per-partition watermark to version(p)
  /// afterwards.
  Status ReplacePartition(int p, std::vector<dataflow::Record> records);

 private:
  struct Entry {
    dataflow::Record record;
    /// Value of the owning partition's clock when this entry was last
    /// written (>= 1 for live entries).
    uint64_t version = 0;
  };
  using PartitionMap =
      std::map<dataflow::Record, Entry, dataflow::RecordOrder>;
  /// One partition's entries plus its private modification clock. No state
  /// is shared between partitions, which is what makes ApplyDelta's
  /// per-partition upsert phase safe to run on the pool.
  struct Partition {
    PartitionMap entries;
    uint64_t clock = 0;
  };

  dataflow::KeyColumns key_;
  /// Identity columns 0..k-1 used to hash key projections in Lookup;
  /// hoisted out of the delta-join hot loop.
  dataflow::KeyColumns identity_key_;
  std::vector<Partition> parts_;
};

/// Delta-iteration state: solution set + working set (paper §2.1). A failure
/// loses both pieces of the affected partitions.
class DeltaState final : public IterationState {
 public:
  DeltaState() = default;
  DeltaState(SolutionSet solution, dataflow::PartitionedDataset workset)
      : solution_(std::move(solution)), workset_(std::move(workset)) {}

  StateKind kind() const override { return StateKind::kDelta; }
  int num_partitions() const override { return solution_.num_partitions(); }
  std::vector<uint8_t> SerializePartition(int p) const override;
  Status RestorePartition(int p, const std::vector<uint8_t>& blob) override;
  void ClearPartition(int p) override;
  uint64_t PartitionByteSize(int p) const override;

  SolutionSet& solution() { return solution_; }
  const SolutionSet& solution() const { return solution_; }
  dataflow::PartitionedDataset& workset() { return workset_; }
  const dataflow::PartitionedDataset& workset() const { return workset_; }

 private:
  SolutionSet solution_;
  dataflow::PartitionedDataset workset_;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_STATE_H_
