#include "iteration/state.h"

#include "common/logging.h"

namespace flinkless::iteration {

using dataflow::PartitionedDataset;
using dataflow::Record;

std::vector<uint8_t> BulkState::SerializePartition(int p) const {
  return dataflow::SerializeRecords(data_.partition(p));
}

Status BulkState::RestorePartition(int p, const std::vector<uint8_t>& blob) {
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> records,
                             dataflow::DeserializeRecords(blob));
  data_.partition(p) = std::move(records);
  return Status::OK();
}

uint64_t BulkState::PartitionByteSize(int p) const {
  return dataflow::SerializedSize(data_.partition(p));
}

SolutionSet::SolutionSet(int num_partitions, dataflow::KeyColumns key)
    : key_(std::move(key)), parts_(num_partitions) {}

SolutionSet SolutionSet::FromRecords(std::vector<Record> records,
                                     const dataflow::KeyColumns& key,
                                     int num_partitions) {
  SolutionSet set(num_partitions, key);
  for (auto& r : records) set.Upsert(std::move(r));
  return set;
}

bool SolutionSet::Upsert(Record record) {
  int p = PartitionedDataset::PartitionOf(record, key_, num_partitions());
  Record k = dataflow::ExtractKey(record, key_);
  Entry entry{std::move(record), ++version_};
  auto [it, inserted] =
      parts_[p].insert_or_assign(std::move(k), std::move(entry));
  (void)it;
  return !inserted;
}

const Record* SolutionSet::Lookup(const Record& key_projection) const {
  // The projection is hashed with identity key columns (0..k-1).
  dataflow::KeyColumns identity(key_.size());
  for (size_t i = 0; i < key_.size(); ++i) identity[i] = static_cast<int>(i);
  int p = PartitionedDataset::PartitionOf(key_projection, identity,
                                          num_partitions());
  auto it = parts_[p].find(key_projection);
  return it == parts_[p].end() ? nullptr : &it->second.record;
}

std::vector<Record> SolutionSet::PartitionRecords(int p) const {
  std::vector<Record> out;
  out.reserve(parts_[p].size());
  for (const auto& [k, entry] : parts_[p]) out.push_back(entry.record);
  return out;
}

std::vector<Record> SolutionSet::EntriesSince(int p,
                                              uint64_t since_version) const {
  std::vector<Record> out;
  for (const auto& [k, entry] : parts_[p]) {
    if (entry.version > since_version) out.push_back(entry.record);
  }
  return out;
}

uint64_t SolutionSet::NumEntries() const {
  uint64_t total = 0;
  for (const auto& p : parts_) total += p.size();
  return total;
}

PartitionedDataset SolutionSet::ToDataset(runtime::ThreadPool* pool) const {
  PartitionedDataset ds(num_partitions());
  runtime::ParallelFor(pool, num_partitions(),
                       [&](int p) { ds.partition(p) = PartitionRecords(p); });
  return ds;
}

Status SolutionSet::ReplacePartition(int p, std::vector<Record> records) {
  if (p < 0 || p >= num_partitions()) {
    return Status::OutOfRange("solution-set partition " + std::to_string(p));
  }
  parts_[p].clear();
  for (auto& r : records) {
    int target = PartitionedDataset::PartitionOf(r, key_, num_partitions());
    if (target != p) {
      return Status::InvalidArgument(
          "record " + dataflow::RecordToString(r) + " hashes to partition " +
          std::to_string(target) + ", not " + std::to_string(p));
    }
    Record k = dataflow::ExtractKey(r, key_);
    Entry entry{std::move(r), ++version_};
    parts_[p].insert_or_assign(std::move(k), std::move(entry));
  }
  return Status::OK();
}

namespace {

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> DeltaState::SerializePartition(int p) const {
  std::vector<uint8_t> solution_blob =
      dataflow::SerializeRecords(solution_.PartitionRecords(p));
  std::vector<uint8_t> workset_blob =
      dataflow::SerializeRecords(workset_.partition(p));
  std::vector<uint8_t> out;
  out.reserve(16 + solution_blob.size() + workset_blob.size());
  PutU64(solution_blob.size(), &out);
  out.insert(out.end(), solution_blob.begin(), solution_blob.end());
  out.insert(out.end(), workset_blob.begin(), workset_blob.end());
  return out;
}

Status DeltaState::RestorePartition(int p, const std::vector<uint8_t>& blob) {
  size_t offset = 0;
  uint64_t solution_len = 0;
  if (!GetU64(blob, &offset, &solution_len) ||
      offset + solution_len > blob.size()) {
    return Status::DataLoss("truncated delta-state snapshot");
  }
  std::vector<uint8_t> solution_blob(blob.begin() + offset,
                                     blob.begin() + offset + solution_len);
  std::vector<uint8_t> workset_blob(blob.begin() + offset + solution_len,
                                    blob.end());
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> solution_records,
                             dataflow::DeserializeRecords(solution_blob));
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> workset_records,
                             dataflow::DeserializeRecords(workset_blob));
  FLINKLESS_RETURN_NOT_OK(
      solution_.ReplacePartition(p, std::move(solution_records)));
  workset_.partition(p) = std::move(workset_records);
  return Status::OK();
}

void DeltaState::ClearPartition(int p) {
  solution_.ClearPartition(p);
  workset_.ClearPartition(p);
}

uint64_t DeltaState::PartitionByteSize(int p) const {
  return 8 + dataflow::SerializedSize(solution_.PartitionRecords(p)) +
         dataflow::SerializedSize(workset_.partition(p));
}

}  // namespace flinkless::iteration
