#include "iteration/state.h"

#include <string>
#include <utility>

#include "common/logging.h"

namespace flinkless::iteration {

using dataflow::PartitionedDataset;
using dataflow::Record;

std::vector<uint8_t> BulkState::SerializePartition(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "bulk-state partition " << p << " out of range");
  return dataflow::SerializeRecords(data_.partition(p));
}

Status BulkState::RestorePartition(int p, const std::vector<uint8_t>& blob) {
  if (p < 0 || p >= num_partitions()) {
    return Status::OutOfRange("bulk-state partition " + std::to_string(p));
  }
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> records,
                             dataflow::DeserializeRecords(blob));
  data_.partition(p) = std::move(records);
  return Status::OK();
}

void BulkState::ClearPartition(int p) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "bulk-state partition " << p << " out of range");
  data_.ClearPartition(p);
}

uint64_t BulkState::PartitionByteSize(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "bulk-state partition " << p << " out of range");
  return dataflow::SerializedSize(data_.partition(p));
}

namespace {

dataflow::KeyColumns IdentityColumns(size_t n) {
  dataflow::KeyColumns identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<int>(i);
  return identity;
}

}  // namespace

SolutionSet::SolutionSet(int num_partitions, dataflow::KeyColumns key)
    : key_(std::move(key)),
      identity_key_(IdentityColumns(key_.size())),
      parts_(num_partitions) {}

SolutionSet SolutionSet::FromRecords(std::vector<Record> records,
                                     const dataflow::KeyColumns& key,
                                     int num_partitions) {
  SolutionSet set(num_partitions, key);
  for (auto& r : records) set.Upsert(std::move(r));
  return set;
}

bool SolutionSet::Upsert(Record record) {
  int p = PartitionedDataset::PartitionOf(record, key_, num_partitions());
  return UpsertIntoPartition(p, std::move(record));
}

bool SolutionSet::UpsertIntoPartition(int p, Record record) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  FLINKLESS_CHECK(
      PartitionedDataset::PartitionOf(record, key_, num_partitions()) == p,
      "record " << dataflow::RecordToString(record)
                << " does not hash to partition " << p);
  Partition& part = parts_[p];
  Record k = dataflow::ExtractKey(record, key_);
  Entry entry{std::move(record), ++part.clock};
  auto [it, inserted] =
      part.entries.insert_or_assign(std::move(k), std::move(entry));
  (void)it;
  return !inserted;
}

uint64_t SolutionSet::ApplyDelta(PartitionedDataset delta,
                                 runtime::ThreadPool* pool,
                                 runtime::Tracer* tracer) {
  const int targets = num_partitions();
  const int sources = delta.num_partitions();
  const uint64_t applied = delta.NumRecords();

  runtime::TraceSpan span(tracer, runtime::SpanKind::kSolutionUpdate,
                          "solution.update");
  span.AddArg("records", static_cast<int64_t>(applied));

  // Phase 1 (scatter): each source partition routes its records into its own
  // row of the outbox, so no two tasks write the same cell.
  std::vector<std::vector<std::vector<Record>>> outbox(
      sources, std::vector<std::vector<Record>>(targets));
  runtime::ParallelFor(pool, sources, [&](int s) {
    for (auto& r : delta.partition(s)) {
      int t = PartitionedDataset::PartitionOf(r, key_, targets);
      outbox[s][t].push_back(std::move(r));
    }
  });

  // Phase 2 (apply): each target partition upserts its shards in source
  // order against its private clock. Per target this is the serial Upsert
  // loop's order restricted to that target, and the clocks are per-partition,
  // so entries *and* their versions are identical at any thread count.
  runtime::TracedParallelFor(
      pool, span, targets,
      [&](int t) {
        for (int s = 0; s < sources; ++s) {
          for (auto& r : outbox[s][t]) UpsertIntoPartition(t, std::move(r));
        }
      },
      [&](int t) {
        int64_t shard = 0;
        for (int s = 0; s < sources; ++s) {
          shard += static_cast<int64_t>(outbox[s][t].size());
        }
        return shard;
      });
  return applied;
}

const Record* SolutionSet::Lookup(const Record& key_projection) const {
  // The projection is hashed with the identity key columns (0..k-1),
  // precomputed at construction — this sits in the delta-join hot loop.
  int p = PartitionedDataset::PartitionOf(key_projection, identity_key_,
                                          num_partitions());
  const PartitionMap& entries = parts_[p].entries;
  auto it = entries.find(key_projection);
  return it == entries.end() ? nullptr : &it->second.record;
}

std::vector<Record> SolutionSet::PartitionRecords(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  std::vector<Record> out;
  out.reserve(parts_[p].entries.size());
  for (const auto& [k, entry] : parts_[p].entries) out.push_back(entry.record);
  return out;
}

uint64_t SolutionSet::PartitionSize(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  return parts_[p].entries.size();
}

uint64_t SolutionSet::version(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  return parts_[p].clock;
}

std::vector<uint64_t> SolutionSet::VersionVector() const {
  std::vector<uint64_t> versions;
  versions.reserve(parts_.size());
  for (const auto& part : parts_) versions.push_back(part.clock);
  return versions;
}

std::vector<Record> SolutionSet::EntriesSince(int p,
                                              uint64_t since_version) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  std::vector<Record> out;
  for (const auto& [k, entry] : parts_[p].entries) {
    if (entry.version > since_version) out.push_back(entry.record);
  }
  return out;
}

uint64_t SolutionSet::NumEntries() const {
  uint64_t total = 0;
  for (const auto& part : parts_) total += part.entries.size();
  return total;
}

PartitionedDataset SolutionSet::ToDataset(runtime::ThreadPool* pool) const {
  PartitionedDataset ds(num_partitions());
  runtime::ParallelFor(pool, num_partitions(),
                       [&](int p) { ds.partition(p) = PartitionRecords(p); });
  return ds;
}

void SolutionSet::ClearPartition(int p) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  parts_[p].entries.clear();
  parts_[p].clock = 0;
}

void SolutionSet::FastForwardClock(int p, uint64_t to) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "solution-set partition " << p << " out of range");
  FLINKLESS_CHECK(to >= parts_[p].clock,
                  "clock of partition " << p << " cannot move backwards ("
                                        << parts_[p].clock << " -> " << to
                                        << ")");
  parts_[p].clock = to;
}

Status SolutionSet::ReplacePartition(int p, std::vector<Record> records) {
  if (p < 0 || p >= num_partitions()) {
    return Status::OutOfRange("solution-set partition " + std::to_string(p));
  }
  // Validate routing before mutating anything, so a bad batch cannot leave
  // the partition half-replaced.
  for (const Record& r : records) {
    int target = PartitionedDataset::PartitionOf(r, key_, num_partitions());
    if (target != p) {
      return Status::InvalidArgument(
          "record " + dataflow::RecordToString(r) + " hashes to partition " +
          std::to_string(target) + ", not " + std::to_string(p));
    }
  }
  // Restart the partition's history: restored entries get versions 1..k, so
  // EntriesSince(p, 0) still returns all of them while EntriesSince against
  // a resynced watermark (= the new clock) returns none. A restore never
  // marks entries freshly modified.
  Partition& part = parts_[p];
  part.entries.clear();
  part.clock = 0;
  for (auto& r : records) {
    Record k = dataflow::ExtractKey(r, key_);
    Entry entry{std::move(r), ++part.clock};
    part.entries.insert_or_assign(std::move(k), std::move(entry));
  }
  return Status::OK();
}

namespace {

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> DeltaState::SerializePartition(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "delta-state partition " << p << " out of range");
  std::vector<uint8_t> solution_blob =
      dataflow::SerializeRecords(solution_.PartitionRecords(p));
  std::vector<uint8_t> workset_blob =
      dataflow::SerializeRecords(workset_.partition(p));
  std::vector<uint8_t> out;
  out.reserve(16 + solution_blob.size() + workset_blob.size());
  PutU64(solution_blob.size(), &out);
  out.insert(out.end(), solution_blob.begin(), solution_blob.end());
  out.insert(out.end(), workset_blob.begin(), workset_blob.end());
  return out;
}

Status DeltaState::RestorePartition(int p, const std::vector<uint8_t>& blob) {
  if (p < 0 || p >= num_partitions()) {
    return Status::OutOfRange("delta-state partition " + std::to_string(p));
  }
  size_t offset = 0;
  uint64_t solution_len = 0;
  if (!GetU64(blob, &offset, &solution_len) ||
      offset + solution_len > blob.size()) {
    return Status::DataLoss("truncated delta-state snapshot");
  }
  std::vector<uint8_t> solution_blob(blob.begin() + offset,
                                     blob.begin() + offset + solution_len);
  std::vector<uint8_t> workset_blob(blob.begin() + offset + solution_len,
                                    blob.end());
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> solution_records,
                             dataflow::DeserializeRecords(solution_blob));
  FLINKLESS_ASSIGN_OR_RETURN(std::vector<Record> workset_records,
                             dataflow::DeserializeRecords(workset_blob));
  FLINKLESS_RETURN_NOT_OK(
      solution_.ReplacePartition(p, std::move(solution_records)));
  workset_.partition(p) = std::move(workset_records);
  return Status::OK();
}

void DeltaState::ClearPartition(int p) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "delta-state partition " << p << " out of range");
  solution_.ClearPartition(p);
  workset_.ClearPartition(p);
}

uint64_t DeltaState::PartitionByteSize(int p) const {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "delta-state partition " << p << " out of range");
  return 8 + dataflow::SerializedSize(solution_.PartitionRecords(p)) +
         dataflow::SerializedSize(workset_.partition(p));
}

}  // namespace flinkless::iteration
