// Epoch hooks: superstep-boundary callbacks the iteration drivers fire so
// an observer (the job server, DESIGN.md §16) can publish read views with
// read-your-epoch consistency.
//
// Both drivers fire the hook at the same four points of their superstep
// loop. Per superstep exactly one of kEpochComplete OR the pair
// (kFailureDetected, then kRecoveryComplete) fires, so a consumer that
// refreshes its view only on kEpochComplete/kRecoveryComplete never
// observes a half-applied delta: between those two events the state is
// either untouched or mid-recovery, and the previous published epoch stays
// pinned.

#ifndef FLINKLESS_ITERATION_EPOCH_H_
#define FLINKLESS_ITERATION_EPOCH_H_

#include <functional>
#include <vector>

namespace flinkless::iteration {

class IterationState;

enum class EpochEvent : int {
  /// OnJobStart ran; `state` is the initial state — epoch 0. A consumer
  /// may publish it as the first readable view.
  kJobStart = 0,
  /// A failure-free superstep fully applied its delta (and the policy's
  /// checkpoint, if any). `state` is consistent at `epoch`.
  kEpochComplete,
  /// A failure fired: the lost partitions were cleared and the exec cache
  /// invalidated, but the policy has not recovered yet. `state` is
  /// INCONSISTENT — consumers must not read it, only note that every
  /// version clock may restart (ReplacePartition semantics, state.h) and
  /// keep serving their previously published epoch.
  kFailureDetected,
  /// The policy's recovery action completed. `state` is consistent again
  /// at `epoch` — which may be EARLIER than previously published epochs
  /// (rollback rewind, restart); deterministic re-execution makes the
  /// re-published epochs content-identical, so consumers may keep a newer
  /// pinned view and skip older publishes.
  kRecoveryComplete,
};

/// What a hook invocation sees. `state` and `lost` are borrowed for the
/// duration of the call only.
struct EpochInfo {
  EpochEvent event = EpochEvent::kEpochComplete;
  /// The epoch `state` corresponds to: the executed superstep for
  /// kEpochComplete, the post-recovery logical iteration for
  /// kRecoveryComplete (the rewind target for rollback, 0 for restart),
  /// the failed superstep for kFailureDetected, 0 for kJobStart.
  int epoch = 0;
  const IterationState* state = nullptr;
  /// Partitions lost (kFailureDetected / kRecoveryComplete only).
  const std::vector<int>* lost = nullptr;
};

/// Fired on the driver's orchestration thread; the driver blocks until it
/// returns, so a hook may safely read `state` (and may block to hand the
/// superstep "turn" to a scheduler — the job-server pattern).
using EpochHook = std::function<void(const EpochInfo&)>;

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_EPOCH_H_
