// Bulk iterations: the whole intermediate dataset is recomputed every
// superstep by re-running the step plan (paper §2.1, used by PageRank).

#ifndef FLINKLESS_ITERATION_BULK_ITERATION_H_
#define FLINKLESS_ITERATION_BULK_ITERATION_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "dataflow/executor.h"
#include "dataflow/plan.h"
#include "iteration/context.h"
#include "iteration/epoch.h"
#include "iteration/policy.h"
#include "iteration/state.h"

namespace flinkless::iteration {

/// Convergence test for bulk iterations: given the state the superstep
/// consumed and the state it produced, decide whether the computation has
/// converged; `metric` (optional output) is recorded as the
/// "convergence_metric" gauge (PageRank reports the L1 difference here,
/// matching the paper's bottom-right plot).
using BulkConvergenceFn =
    std::function<bool(const dataflow::PartitionedDataset& previous,
                       const dataflow::PartitionedDataset& next,
                       double* metric)>;

/// Per-iteration statistics enrichment (e.g. "vertices converged to their
/// true rank"). Called after failure handling, so the recorded series shows
/// the paper's plummet at failure iterations.
using BulkStatsHook =
    std::function<void(int iteration, const dataflow::PartitionedDataset& state,
                       runtime::IterationStats* stats)>;

/// Configuration of a bulk-iterative job.
struct BulkIterationConfig {
  /// Hard superstep limit (Flink's "predefined number of iterations").
  int max_iterations = 100;

  /// Key columns the state dataset is partitioned by (the vertex id).
  dataflow::KeyColumns state_key = {0};

  /// Source binding name under which the current state is visible to the
  /// step plan.
  std::string state_binding = "state";

  /// Plan output holding the next state.
  std::string next_state_output = "next_state";

  /// Optional termination criterion; absent means run max_iterations.
  BulkConvergenceFn convergence;

  /// Optional per-iteration statistics hook.
  BulkStatsHook stats_hook;

  /// Safety valve: abort if recoveries push the total executed supersteps
  /// beyond this multiple of max_iterations.
  int max_total_supersteps_factor = 20;

  /// Cache loop-invariant plan results (static shuffles, join build-side
  /// indexes) across supersteps. Outputs are byte-identical either way;
  /// only repeated work on the static bindings is skipped. See
  /// exec_cache.h / DESIGN.md §10.
  bool cache_loop_invariant = true;

  /// Log every shuffled loop-variant channel of the current superstep to an
  /// outbound message log (runtime/message_log.h, DESIGN.md §14) and expose
  /// IterationContext::replay_messages, enabling confined-log recovery
  /// (core::ConfinedLogReplayPolicy). The log rotates at each superstep
  /// boundary — only the most recent superstep's channels are retained —
  /// and shares the driver's memory budget, spilling to stable storage
  /// under pressure. Outputs are byte-identical with the flag on or off.
  bool message_log = false;

  /// Optional superstep-boundary observer (iteration/epoch.h): fired after
  /// OnJobStart (kJobStart), at each consistent superstep boundary
  /// (kEpochComplete / kRecoveryComplete) and mid-recovery
  /// (kFailureDetected). The driver blocks while the hook runs — the job
  /// server parks the job thread here to hand out superstep turns. Empty =
  /// off; the hook never changes outputs, stats, or simulated charges.
  EpochHook epoch_hook;
};

/// Result of a bulk-iterative run.
struct BulkIterationResult {
  dataflow::PartitionedDataset final_state;
  /// Highest iteration number reached (the job's logical progress).
  int iterations = 0;
  /// Total supersteps actually executed, counting rollback re-execution.
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
};

/// Drives a bulk iteration of `step_plan` under a fault-tolerance policy.
class BulkIterationDriver {
 public:
  /// `step_plan` and the datasets referenced by `static_bindings` are
  /// borrowed and must outlive the driver. The plan must have an output
  /// named config.next_state_output and may reference config.state_binding
  /// plus any of the static bindings as sources.
  BulkIterationDriver(const dataflow::Plan* step_plan,
                      dataflow::Bindings static_bindings,
                      BulkIterationConfig config,
                      dataflow::ExecOptions exec_options, JobEnv env);

  /// Runs to convergence (or max_iterations) from `initial`, which must be
  /// hash-partitioned by config.state_key. The policy handles any failures
  /// from env.failures.
  Result<BulkIterationResult> Run(dataflow::PartitionedDataset initial,
                                  FaultTolerancePolicy* policy);

 private:
  const dataflow::Plan* step_plan_;
  dataflow::Bindings static_bindings_;
  BulkIterationConfig config_;
  dataflow::ExecOptions exec_options_;
  JobEnv env_;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_BULK_ITERATION_H_
