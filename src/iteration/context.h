// JobEnv and IterationContext: the runtime facilities an iterative job and
// its fault-tolerance policy see.

#ifndef FLINKLESS_ITERATION_CONTEXT_H_
#define FLINKLESS_ITERATION_CONTEXT_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/cost_model.h"
#include "runtime/failure.h"
#include "runtime/memory_manager.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"
#include "runtime/thread_pool.h"
#include "runtime/tracing.h"

namespace flinkless::iteration {

/// The environment a job runs in. All pointers are borrowed; optional
/// members may be nullptr and the driver will supply private defaults
/// (a rollback policy does require `storage`).
struct JobEnv {
  runtime::SimClock* clock = nullptr;
  const runtime::CostModel* costs = nullptr;
  runtime::StableStorage* storage = nullptr;
  runtime::Cluster* cluster = nullptr;
  runtime::MetricsRegistry* metrics = nullptr;
  runtime::FailureSchedule* failures = nullptr;
  /// Optional trace recorder (see runtime/tracing.h). The drivers propagate
  /// it into the executor and open superstep/checkpoint/compensation spans
  /// and failure instants on it. Null = tracing off.
  runtime::Tracer* tracer = nullptr;
  /// Optional metrics v2 sink (per-partition counters, histograms,
  /// gauges — see runtime/metrics.h). The drivers propagate it into the
  /// executor, cache, and memory manager, and record recovery counters
  /// (partitions lost, compensation records) on it. Null = metrics v2 off.
  runtime::MetricsSink* metrics_sink = nullptr;
  /// Optional shared memory manager (the multi-job server, DESIGN.md §16):
  /// when set, the drivers register their cache and message-log segments
  /// here instead of a private per-run manager, so many concurrent jobs
  /// arbitrate one byte budget — one job's superstep may spill another
  /// job's cold artifacts. Null = the driver owns a private manager sized
  /// by ExecOptions::memory_budget_bytes (the pre-server behavior).
  runtime::MemoryManager* memory = nullptr;
  std::string job_id = "job";
};

/// What a FaultTolerancePolicy sees when invoked: the environment plus the
/// current superstep.
struct IterationContext {
  /// 1-based superstep just executed (0 in OnJobStart).
  int iteration = 0;
  int num_partitions = 0;
  runtime::SimClock* clock = nullptr;
  const runtime::CostModel* costs = nullptr;
  runtime::StableStorage* storage = nullptr;
  runtime::Cluster* cluster = nullptr;
  /// The executor's worker pool (nullptr when executing serially).
  /// Compensation functions and policies run partition-parallel work on it
  /// via runtime::ParallelFor, which degrades to an inline loop when null.
  runtime::ThreadPool* pool = nullptr;
  /// Trace recorder of the run (nullptr = tracing off). Policies may attach
  /// args to the driver's open checkpoint/compensation span via instants.
  runtime::Tracer* tracer = nullptr;
  std::string job_id;

  /// Confined-log replay hook (DESIGN.md §14). Installed by the iteration
  /// drivers only when their config enables the outbound message log;
  /// replays the failed superstep's logged channels into the lost
  /// partitions (Executor::Replay) and re-applies the resulting updates to
  /// the iteration state. Policies that depend on it (e.g.
  /// ConfinedLogReplayPolicy) must fail with FailedPrecondition when it is
  /// empty. Empty = message logging off.
  std::function<Status(const std::vector<int>& lost)> replay_messages;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_CONTEXT_H_
