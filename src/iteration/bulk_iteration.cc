#include "iteration/bulk_iteration.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/logging.h"
#include "dataflow/exec_cache.h"
#include "runtime/message_log.h"

namespace flinkless::iteration {

using dataflow::PartitionedDataset;

BulkIterationDriver::BulkIterationDriver(const dataflow::Plan* step_plan,
                                         dataflow::Bindings static_bindings,
                                         BulkIterationConfig config,
                                         dataflow::ExecOptions exec_options,
                                         JobEnv env)
    : step_plan_(step_plan),
      static_bindings_(std::move(static_bindings)),
      config_(std::move(config)),
      exec_options_(exec_options),
      env_(std::move(env)) {
  FLINKLESS_CHECK(step_plan_ != nullptr, "bulk driver needs a step plan");
}

Result<BulkIterationResult> BulkIterationDriver::Run(
    PartitionedDataset initial, FaultTolerancePolicy* policy) {
  FLINKLESS_CHECK(policy != nullptr, "bulk driver needs a policy");
  const int n = exec_options_.num_partitions;
  if (initial.num_partitions() != n) {
    return Status::InvalidArgument(
        "initial state has " + std::to_string(initial.num_partitions()) +
        " partitions, executor expects " + std::to_string(n));
  }

  // Private defaults for optional environment pieces.
  std::unique_ptr<runtime::Cluster> own_cluster;
  if (env_.cluster == nullptr) {
    own_cluster = std::make_unique<runtime::Cluster>(n, env_.clock,
                                                     env_.costs);
    env_.cluster = own_cluster.get();
  }
  std::unique_ptr<runtime::MetricsRegistry> own_metrics;
  if (env_.metrics == nullptr) {
    own_metrics = std::make_unique<runtime::MetricsRegistry>();
    env_.metrics = own_metrics.get();
  }

  // The tracer may arrive via either the env or the exec options; make both
  // agree so the executor and the driver record into the same timeline.
  if (exec_options_.tracer == nullptr) exec_options_.tracer = env_.tracer;
  runtime::Tracer* tracer = exec_options_.tracer;

  // Metrics v2 flows the same two ways; either injection point wins and
  // every layer (executor, cache, memory manager, driver) records into the
  // same sink.
  if (exec_options_.metrics == nullptr) {
    exec_options_.metrics = env_.metrics_sink;
  }
  runtime::MetricsSink* metrics = exec_options_.metrics;

  // Loop-invariant cache for this run: only the state binding changes
  // between supersteps, so everything derived purely from the static
  // bindings is shuffled/indexed once and reused (DESIGN.md §10).
  // Budgeted residency for the cached artifacts (DESIGN.md §11): cold
  // entries spill to the job's stable storage once serialized residency
  // exceeds memory_budget_bytes. Attached even with an unlimited budget so
  // peak residency is always measured (no spills happen then). Declared
  // before the cache: the cache unregisters its segments on destruction.
  // A JobEnv-supplied manager (the multi-job server's shared budget) wins
  // over the private one; its metrics sink is the server's to set, so only
  // the private manager is wired to this run's sink here.
  runtime::MemoryManager own_memory(exec_options_.memory_budget_bytes);
  own_memory.set_metrics(metrics);
  runtime::MemoryManager& memory =
      env_.memory != nullptr ? *env_.memory : own_memory;
  dataflow::ExecCache cache(std::vector<std::string>{config_.state_binding});
  cache.set_metrics(metrics);
  dataflow::ExecOptions exec_opts = exec_options_;
  if (config_.cache_loop_invariant && exec_opts.cache == nullptr) {
    exec_opts.cache = &cache;
  }
  if (exec_opts.cache == &cache && env_.storage != nullptr) {
    cache.AttachMemoryManager(&memory, env_.storage, env_.job_id);
  }
  // Outbound message log for confined-log recovery (DESIGN.md §14). Only
  // the state binding varies between supersteps. Declared after `memory`:
  // the log unregisters its segments on destruction.
  std::unique_ptr<runtime::MessageLog> msglog;
  if (config_.message_log) {
    msglog = std::make_unique<runtime::MessageLog>(
        std::vector<std::string>{config_.state_binding});
    msglog->set_metrics(metrics);
    if (env_.storage != nullptr) {
      msglog->AttachMemoryManager(&memory, env_.storage, env_.job_id);
    }
    exec_opts.message_log = msglog.get();
  }
  dataflow::Executor executor(exec_opts);

  // Assigned after the state exists (below); make_ctx reads it at call
  // time, so OnJobStart sees an empty hook only if logging is off.
  std::function<Status(const std::vector<int>&)> replay_messages;

  auto make_ctx = [&](int iteration) {
    IterationContext ctx;
    ctx.iteration = iteration;
    ctx.num_partitions = n;
    ctx.clock = env_.clock;
    ctx.costs = env_.costs;
    ctx.storage = env_.storage;
    ctx.cluster = env_.cluster;
    ctx.pool = executor.pool();
    ctx.tracer = tracer;
    ctx.job_id = env_.job_id;
    ctx.replay_messages = replay_messages;
    return ctx;
  };

  const PartitionedDataset initial_copy = initial;
  BulkState state(std::move(initial));

  // Confined-log replay hook: rebuild the lost partitions' next state from
  // the failed superstep's logged channels and install them. The failed
  // superstep's *input* state is gone (the driver already advanced), but
  // Replay never needs it — demand stops at the logged variant channels.
  uint64_t messages_replayed_acc = 0;
  if (msglog != nullptr) {
    replay_messages = [&](const std::vector<int>& lost) -> Status {
      dataflow::ExecStats rstats;
      FLINKLESS_ASSIGN_OR_RETURN(
          auto replayed,
          executor.Replay(*step_plan_, static_bindings_, lost, msglog.get(),
                          &rstats));
      auto it = replayed.find(config_.next_state_output);
      if (it == replayed.end()) {
        return Status::NotFound("step plan has no output '" +
                                config_.next_state_output + "'");
      }
      for (int p : lost) {
        state.data().partition(p) = std::move(it->second.partition(p));
      }
      messages_replayed_acc += rstats.messages_replayed;
      return Status::OK();
    };
  }

  auto checkpoint_bytes_before = [&]() -> uint64_t {
    return env_.storage != nullptr ? env_.storage->bytes_written() : 0;
  };

  uint64_t cp_before = checkpoint_bytes_before();
  {
    runtime::TraceSpan start_span(tracer, runtime::SpanKind::kCheckpoint,
                                  policy->name());
    FLINKLESS_RETURN_NOT_OK(policy->OnJobStart(make_ctx(0), &state));
    uint64_t bytes = checkpoint_bytes_before() - cp_before;
    if (bytes > 0) {
      start_span.AddArg("bytes", static_cast<int64_t>(bytes));
    } else {
      start_span.Cancel();  // the policy wrote nothing at job start
    }
  }
  uint64_t initial_checkpoint_bytes = checkpoint_bytes_before() - cp_before;
  if (initial_checkpoint_bytes > 0) {
    if (env_.metrics != nullptr) {
      env_.metrics->IncrCounter("initial_checkpoint_bytes",
                                initial_checkpoint_bytes);
    }
    if (metrics != nullptr) {
      metrics->Count(runtime::metric::kInitialCheckpointBytes, -1,
                     initial_checkpoint_bytes);
    }
  }

  if (config_.epoch_hook) {
    EpochInfo info;
    info.event = EpochEvent::kJobStart;
    info.epoch = 0;
    info.state = &state;
    config_.epoch_hook(info);
  }

  // Running count of failure-schedule ids dropped for being out of range
  // (see the sanitization below) — exported as a gauge so a typo'd --fail
  // spec is visible in the metrics report, not just the log.
  uint64_t dropped_failure_ids = 0;

  BulkIterationResult result;
  const int max_supersteps =
      config_.max_iterations * std::max(1, config_.max_total_supersteps_factor);

  int iteration = 1;
  while (iteration <= config_.max_iterations) {
    if (result.supersteps_executed >= max_supersteps) {
      return Status::Aborted(
          "job '" + env_.job_id + "' exceeded " +
          std::to_string(max_supersteps) +
          " supersteps (recovery loop?); aborting");
    }
    ++result.supersteps_executed;

    const int64_t sim_before =
        env_.clock != nullptr ? env_.clock->TotalNs() : 0;
    std::array<int64_t, runtime::kNumCharges> charges_before{};
    if (env_.clock != nullptr) {
      for (int c = 0; c < runtime::kNumCharges; ++c) {
        charges_before[c] = env_.clock->Of(static_cast<runtime::Charge>(c));
      }
    }
    runtime::WallTimer wall;
    const runtime::MemoryManager::Stats mem_before = memory.stats();

    if (tracer != nullptr) tracer->set_iteration(iteration);
    runtime::TraceSpan iter_span(tracer, runtime::SpanKind::kIteration,
                                 "superstep");
    if (iter_span.active()) iter_span.AddArg("iteration", iteration);

    // Rotate the message log: confined-log recovery only ever replays the
    // superstep that failed, so earlier channels (and their spilled blobs)
    // are dropped before this superstep appends its own.
    if (msglog != nullptr) msglog->BeginSuperstep(iteration);
    const uint64_t replayed_before = messages_replayed_acc;

    dataflow::Bindings bindings = static_bindings_;
    bindings[config_.state_binding] = &state.data();
    dataflow::ExecStats exec_stats;
    FLINKLESS_ASSIGN_OR_RETURN(auto outputs,
                               executor.Execute(*step_plan_, bindings,
                                                &exec_stats));
    if (iter_span.active()) {
      iter_span.AddArg("records",
                       static_cast<int64_t>(exec_stats.records_processed));
      iter_span.AddArg("messages",
                       static_cast<int64_t>(exec_stats.messages_shuffled));
    }
    auto out_it = outputs.find(config_.next_state_output);
    if (out_it == outputs.end()) {
      return Status::NotFound("step plan has no output '" +
                              config_.next_state_output + "'");
    }
    PartitionedDataset next = std::move(out_it->second);

    double metric = 0.0;
    bool converged = false;
    if (config_.convergence) {
      converged = config_.convergence(state.data(), next, &metric);
    }
    state.data() = std::move(next);

    // Superstep boundary: no cached entry is in use any more, so enforce
    // the budget with no exemption — cold artifacts (even the one touched
    // last) spill now rather than occupying residency across supersteps.
    FLINKLESS_RETURN_NOT_OK(memory.EnforceBudget(nullptr, tracer));

    runtime::IterationStats istats;
    istats.iteration = iteration;
    istats.records_processed = exec_stats.records_processed;
    istats.messages_shuffled = exec_stats.messages_shuffled;
    for (const auto& [op_name, count] : exec_stats.node_output_counts) {
      istats.gauges["out:" + op_name] = static_cast<double>(count);
    }
    istats.gauges["batch_ops"] = static_cast<double>(exec_stats.batch_ops);
    istats.gauges["row_fallback_ops"] =
        static_cast<double>(exec_stats.row_fallback_ops);
    if (config_.convergence) istats.gauges["convergence_metric"] = metric;

    std::vector<int> lost =
        env_.failures != nullptr ? env_.failures->Fire(iteration)
                                 : std::vector<int>{};
    // Sanitize the schedule: same-iteration events may repeat a partition
    // (dedupe — killing a worker twice is one failure), and hand-written
    // --fail specs may name partitions the job does not have (drop, but
    // loudly: a typo'd spec that silently fails nothing would make a
    // recovery experiment vacuously green).
    std::sort(lost.begin(), lost.end());
    lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
    const size_t in_range_before = lost.size();
    lost.erase(std::remove_if(lost.begin(), lost.end(),
                              [&](int p) { return p < 0 || p >= n; }),
               lost.end());
    if (const size_t dropped = in_range_before - lost.size(); dropped > 0) {
      dropped_failure_ids += dropped;
      FLOG_WARN("job '" << env_.job_id << "': failure schedule names "
                        << dropped << " partition id(s) outside [0, " << n
                        << ") at iteration " << iteration
                        << "; dropping them");
      if (metrics != nullptr) {
        metrics->SetGauge(runtime::metric::kGaugeRecoveryDroppedIds, -1,
                          static_cast<double>(dropped_failure_ids));
      }
    }

    uint64_t cp_bytes_before = checkpoint_bytes_before();
    int executed_iteration = iteration;

    if (!lost.empty()) {
      istats.failure_injected = true;
      converged = false;
      ++result.failures_recovered;
      if (metrics != nullptr) {
        for (int p : lost) {
          metrics->Count(runtime::metric::kRecoveryPartitionsLost, p);
        }
      }
      if (tracer != nullptr) {
        tracer->Instant(runtime::InstantKind::kFailureInjected, -1,
                        {{"iteration", iteration},
                         {"partitions", static_cast<int64_t>(lost.size())}});
        for (int p : lost) {
          tracer->Instant(runtime::InstantKind::kPartitionLost, p);
        }
      }
      env_.cluster->KillPartitions(lost);
      for (int p : lost) state.ClearPartition(p);
      FLINKLESS_RETURN_NOT_OK(env_.cluster->ReassignToFreshWorkers(lost));
      // Cached artifacts are hash-partitioned: losing any partition means
      // the fresh workers need a full re-scatter, so drop everything —
      // spilled entries and their blobs included, so recovery re-pays the
      // rebuild instead of reloading stale state; the next superstep
      // rebuilds from the (static) bindings.
      if (exec_opts.cache != nullptr) exec_opts.cache->Invalidate(lost);
      if (config_.epoch_hook) {
        // Mid-recovery service point: the state is inconsistent (partitions
        // cleared, nothing restored yet) — observers keep serving their
        // previously published epoch.
        EpochInfo info;
        info.event = EpochEvent::kFailureDetected;
        info.epoch = iteration;
        info.state = &state;
        info.lost = &lost;
        config_.epoch_hook(info);
      }
      runtime::TraceSpan comp_span(tracer, runtime::SpanKind::kCompensation,
                                   policy->name());
      if (comp_span.active()) {
        comp_span.AddArg("lost_partitions",
                         static_cast<int64_t>(lost.size()));
      }
      FLINKLESS_ASSIGN_OR_RETURN(
          RecoveryOutcome outcome,
          policy->OnFailure(make_ctx(iteration), &state, lost));
      comp_span.Close();
      switch (outcome.action) {
        case RecoveryAction::kContinue:
          ++iteration;
          break;
        case RecoveryAction::kRewind:
          if (outcome.rewind_to_iteration < 0 ||
              outcome.rewind_to_iteration > iteration) {
            return Status::Internal("policy rewound to invalid iteration " +
                                    std::to_string(
                                        outcome.rewind_to_iteration));
          }
          iteration = outcome.rewind_to_iteration + 1;
          break;
        case RecoveryAction::kRestart:
          state = BulkState(initial_copy);
          iteration = 1;
          break;
        case RecoveryAction::kAbort:
          return Status::DataLoss("policy '" + policy->name() +
                                  "' aborted after losing partitions at "
                                  "iteration " +
                                  std::to_string(iteration));
      }
      if (metrics != nullptr) {
        // Records now standing in the lost partitions: what the recovery
        // action (compensation, checkpoint restore, or restart) put back.
        for (int p : lost) {
          const uint64_t repaired = state.data().partition(p).size();
          metrics->Count(runtime::metric::kCompensationRecords, p, repaired);
          metrics->Observe(runtime::metric::kHistCompensationRecords,
                           static_cast<int64_t>(repaired));
        }
      }
    } else {
      runtime::TraceSpan cp_span(tracer, runtime::SpanKind::kCheckpoint,
                                 policy->name());
      FLINKLESS_RETURN_NOT_OK(
          policy->AfterIteration(make_ctx(iteration), &state));
      uint64_t cp_bytes = checkpoint_bytes_before() - cp_bytes_before;
      if (cp_bytes > 0) {
        cp_span.AddArg("bytes", static_cast<int64_t>(cp_bytes));
        cp_span.Close();
      } else {
        cp_span.Cancel();  // nothing written — don't clutter the trace
      }
      ++iteration;
    }

    istats.bytes_checkpointed = checkpoint_bytes_before() - cp_bytes_before;
    if (messages_replayed_acc > replayed_before) {
      istats.gauges["messages_replayed"] =
          static_cast<double>(messages_replayed_acc - replayed_before);
    }
    if (config_.stats_hook) {
      config_.stats_hook(executed_iteration, state.data(), &istats);
    }
    istats.sim_time_ns =
        env_.clock != nullptr ? env_.clock->TotalNs() - sim_before : 0;
    if (env_.clock != nullptr) {
      for (int c = 0; c < runtime::kNumCharges; ++c) {
        istats.sim_time_by_charge[c] =
            env_.clock->Of(static_cast<runtime::Charge>(c)) -
            charges_before[c];
      }
    }
    istats.spills = memory.stats().spills - mem_before.spills;
    istats.unspills = memory.stats().unspills - mem_before.unspills;
    istats.spilled_bytes =
        memory.stats().spilled_bytes - mem_before.spilled_bytes;
    istats.peak_resident_bytes = memory.stats().peak_resident_bytes;
    istats.wall_time_ns = wall.ElapsedNs();
    env_.metrics->RecordIteration(std::move(istats));

    result.iterations = std::max(result.iterations, executed_iteration);

    if (config_.epoch_hook) {
      // Consistent superstep boundary. After the recovery switch the state
      // corresponds to iteration - 1 regardless of the action taken
      // (kContinue: the executed superstep; kRewind: the rewind target;
      // kRestart: 0).
      EpochInfo info;
      info.event = lost.empty() ? EpochEvent::kEpochComplete
                                : EpochEvent::kRecoveryComplete;
      info.epoch = iteration - 1;
      info.state = &state;
      info.lost = lost.empty() ? nullptr : &lost;
      config_.epoch_hook(info);
    }

    if (converged) {
      if (tracer != nullptr) {
        tracer->Instant(runtime::InstantKind::kConvergenceReached, -1,
                        {{"iteration", executed_iteration}});
      }
      result.converged = true;
      break;
    }
  }

  if (metrics != nullptr) {
    // End-of-run per-partition state size — the balance the hash
    // partitioner achieved.
    for (int p = 0; p < n; ++p) {
      metrics->SetGauge(runtime::metric::kGaugeStateRecords, p,
                        static_cast<double>(state.data().partition(p).size()));
    }
  }
  result.final_state = std::move(state.data());
  return result;
}

}  // namespace flinkless::iteration
