// FaultTolerancePolicy: the hook interface the iteration drivers invoke
// around supersteps and on failures. The concrete strategies — none,
// restart, checkpoint/rollback, and the paper's optimistic recovery — live
// in src/core.

#ifndef FLINKLESS_ITERATION_POLICY_H_
#define FLINKLESS_ITERATION_POLICY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "iteration/context.h"
#include "iteration/state.h"

namespace flinkless::iteration {

/// What the driver should do after a policy handled a failure.
enum class RecoveryAction {
  /// State is consistent again (compensated or unchanged); continue with the
  /// next superstep.
  kContinue,

  /// State was rewound to a checkpoint; re-execute from
  /// `rewind_to_iteration + 1`.
  kRewind,

  /// Discard everything and restart the job from its initial state.
  kRestart,

  /// The policy cannot recover; the driver aborts the job.
  kAbort,
};

/// Outcome of FaultTolerancePolicy::OnFailure.
struct RecoveryOutcome {
  RecoveryAction action = RecoveryAction::kAbort;

  /// For kRewind: the iteration whose state was restored (execution resumes
  /// at rewind_to_iteration + 1).
  int rewind_to_iteration = 0;

  static RecoveryOutcome Continue() {
    return {RecoveryAction::kContinue, 0};
  }
  static RecoveryOutcome Rewind(int to_iteration) {
    return {RecoveryAction::kRewind, to_iteration};
  }
  static RecoveryOutcome Restart() { return {RecoveryAction::kRestart, 0}; }
  static RecoveryOutcome Abort() { return {RecoveryAction::kAbort, 0}; }
};

/// Strategy hooks around the iteration loop. Implementations must be
/// reusable across runs of the same job shape (the drivers call the hooks
/// strictly in order: OnJobStart, then per superstep either AfterIteration
/// or OnFailure).
class FaultTolerancePolicy {
 public:
  virtual ~FaultTolerancePolicy() = default;

  /// Display name used in experiment tables ("optimistic",
  /// "rollback(k=2)", ...).
  virtual std::string name() const = 0;

  /// Called once before the first superstep with the initial state
  /// (ctx.iteration == 0). Rollback policies checkpoint here so a failure
  /// before the first checkpoint interval still has something to restore.
  virtual Status OnJobStart(const IterationContext& ctx,
                            IterationState* state) {
    (void)ctx;
    (void)state;
    return Status::OK();
  }

  /// Called at the end of every failure-free superstep (checkpoint hook).
  virtual Status AfterIteration(const IterationContext& ctx,
                                IterationState* state) {
    (void)ctx;
    (void)state;
    return Status::OK();
  }

  /// Called after the driver cleared the partitions in `lost` and reassigned
  /// them to fresh workers. The policy must leave `state` consistent (or
  /// request restart/abort) before returning.
  virtual Result<RecoveryOutcome> OnFailure(const IterationContext& ctx,
                                            IterationState* state,
                                            const std::vector<int>& lost) = 0;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_POLICY_H_
