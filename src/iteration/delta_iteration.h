// Delta iterations: a solution set holds the intermediate result, a working
// set holds pending updates; the step plan consumes the workset, emits
// updates to the solution set and the next workset, and the job terminates
// when the workset is empty (paper §2.1, used by Connected Components).

#ifndef FLINKLESS_ITERATION_DELTA_ITERATION_H_
#define FLINKLESS_ITERATION_DELTA_ITERATION_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "dataflow/executor.h"
#include "dataflow/plan.h"
#include "iteration/context.h"
#include "iteration/epoch.h"
#include "iteration/policy.h"
#include "iteration/state.h"

namespace flinkless::iteration {

/// Per-iteration statistics enrichment; sees the solution set and workset
/// after failure handling.
using DeltaStatsHook = std::function<void(
    int iteration, const SolutionSet& solution,
    const dataflow::PartitionedDataset& workset,
    runtime::IterationStats* stats)>;

/// Configuration of a delta-iterative job.
struct DeltaIterationConfig {
  /// Hard superstep limit.
  int max_iterations = 1000;

  /// Key columns of the solution set (and of the delta records).
  dataflow::KeyColumns solution_key = {0};

  /// Source binding names the step plan reads.
  std::string workset_binding = "workset";
  std::string solution_binding = "solution";

  /// Plan outputs: records upserted into the solution set, and the next
  /// workset.
  std::string delta_output = "delta";
  std::string next_workset_output = "next_workset";

  /// Optional per-iteration statistics hook.
  DeltaStatsHook stats_hook;

  /// Safety valve against recovery loops (multiple of max_iterations).
  int max_total_supersteps_factor = 20;

  /// Cache loop-invariant plan results (static shuffles, join build-side
  /// indexes) across supersteps. The workset and solution bindings are
  /// volatile; everything derived only from the static bindings is built
  /// once. Outputs are byte-identical either way (DESIGN.md §10).
  bool cache_loop_invariant = true;

  /// Log every shuffled loop-variant channel of the current superstep to an
  /// outbound message log (runtime/message_log.h, DESIGN.md §14) and expose
  /// IterationContext::replay_messages, enabling confined-log recovery
  /// (core::ConfinedLogReplayPolicy). The log rotates at each superstep
  /// boundary and shares the driver's memory budget, spilling to stable
  /// storage under pressure. Outputs are byte-identical with the flag on or
  /// off. The replay hook assumes the delta and next-workset outputs are
  /// co-partitioned by solution_key (true for every plan in src/algos —
  /// their final shuffle keys on the vertex id).
  bool message_log = false;

  /// Optional superstep-boundary observer (iteration/epoch.h): fired after
  /// OnJobStart (kJobStart), at each consistent superstep boundary
  /// (kEpochComplete / kRecoveryComplete) and mid-recovery
  /// (kFailureDetected). The driver blocks while the hook runs — the job
  /// server parks the job thread here to hand out superstep turns. Empty =
  /// off; the hook never changes outputs, stats, or simulated charges.
  EpochHook epoch_hook;
};

/// Result of a delta-iterative run.
struct DeltaIterationResult {
  SolutionSet final_solution;
  int iterations = 0;
  int supersteps_executed = 0;
  /// True when the workset drained (the delta iteration's convergence).
  bool converged = false;
  int failures_recovered = 0;
};

/// Drives a delta iteration of `step_plan` under a fault-tolerance policy.
class DeltaIterationDriver {
 public:
  DeltaIterationDriver(const dataflow::Plan* step_plan,
                       dataflow::Bindings static_bindings,
                       DeltaIterationConfig config,
                       dataflow::ExecOptions exec_options, JobEnv env);

  /// Runs until the workset drains (or max_iterations). `initial_solution`
  /// records are indexed by config.solution_key; `initial_workset` must have
  /// the executor's partition count.
  Result<DeltaIterationResult> Run(
      std::vector<dataflow::Record> initial_solution,
      dataflow::PartitionedDataset initial_workset,
      FaultTolerancePolicy* policy);

 private:
  const dataflow::Plan* step_plan_;
  dataflow::Bindings static_bindings_;
  DeltaIterationConfig config_;
  dataflow::ExecOptions exec_options_;
  JobEnv env_;
};

}  // namespace flinkless::iteration

#endif  // FLINKLESS_ITERATION_DELTA_ITERATION_H_
