// Playback: the demo GUI's transport controls ("play", "pause", "backward",
// §3.1) as a state machine over recorded per-iteration frames. The terminal
// demo drivers record one frame per superstep and replay them through this
// controller.

#ifndef FLINKLESS_VIZ_PLAYBACK_H_
#define FLINKLESS_VIZ_PLAYBACK_H_

#include <cstddef>
#include <vector>

namespace flinkless::viz {

/// Transport state of a playback session.
enum class PlayState {
  kPlaying,
  kPaused,
  kFinished,
};

/// Holds recorded frames and a cursor with GUI-like controls. `Frame` is
/// whatever the demo renders per iteration (labels, ranks, ...).
template <typename Frame>
class Playback {
 public:
  Playback() = default;
  explicit Playback(std::vector<Frame> frames)
      : frames_(std::move(frames)) {}

  /// Appends a frame (recording side).
  void Record(Frame frame) { frames_.push_back(std::move(frame)); }

  size_t size() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }

  /// Index of the frame the cursor is on (0-based). Meaningless when empty.
  size_t position() const { return position_; }

  PlayState state() const { return state_; }

  /// Current frame; requires !empty().
  const Frame& Current() const { return frames_[position_]; }

  /// The "play" button: resume advancing (no-op when already finished).
  void Play() {
    if (state_ != PlayState::kFinished) state_ = PlayState::kPlaying;
  }

  /// The "pause" button: stop at the end of the current iteration.
  void Pause() {
    if (state_ == PlayState::kPlaying) state_ = PlayState::kPaused;
  }

  /// The "backward" button: jump to the previous iteration and pause there.
  /// Returns false at the first frame (cursor unchanged, still pauses).
  bool StepBackward() {
    if (state_ == PlayState::kFinished) state_ = PlayState::kPaused;
    if (state_ == PlayState::kPlaying) state_ = PlayState::kPaused;
    if (position_ == 0) return false;
    --position_;
    return true;
  }

  /// Advances one frame (used both by "play" ticks and by a manual "next").
  /// Returns false when already at the last frame, switching to kFinished.
  bool StepForward() {
    if (frames_.empty()) {
      state_ = PlayState::kFinished;
      return false;
    }
    if (position_ + 1 >= frames_.size()) {
      state_ = PlayState::kFinished;
      return false;
    }
    ++position_;
    return true;
  }

  /// Jumps to an absolute frame, clamped to the recorded range; pauses.
  void Seek(size_t index) {
    if (frames_.empty()) return;
    position_ = index < frames_.size() ? index : frames_.size() - 1;
    if (state_ == PlayState::kFinished && position_ + 1 < frames_.size()) {
      state_ = PlayState::kPaused;
    } else if (state_ == PlayState::kPlaying) {
      state_ = PlayState::kPaused;
    }
  }

  /// Back to frame 0, paused (fresh demo run without re-executing the job).
  void Rewind() {
    position_ = 0;
    state_ = frames_.empty() ? PlayState::kFinished : PlayState::kPaused;
  }

 private:
  std::vector<Frame> frames_;
  size_t position_ = 0;
  PlayState state_ = PlayState::kPaused;
};

}  // namespace flinkless::viz

#endif  // FLINKLESS_VIZ_PLAYBACK_H_
