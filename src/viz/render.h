// Terminal rendering of the demo's two visualizations (paper §3.2/§3.3):
//
//   * Connected Components: "a distinct color highlights the area enclosing
//     each connected component"; colors merge as components merge, lost
//     vertices are highlighted after a failure. We render one cell per
//     vertex, ANSI-colored by current label, with lost vertices flagged.
//   * PageRank: "the size of a vertex represents the magnitude of its
//     PageRank value". We render one bar per vertex, scaled by rank.

#ifndef FLINKLESS_VIZ_RENDER_H_
#define FLINKLESS_VIZ_RENDER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "runtime/metrics.h"

namespace flinkless::viz {

/// Assigns stable terminal colors to component labels. A label keeps its
/// color for the lifetime of the assigner, so attendees can watch areas of
/// one color grow as the algorithm discovers larger components.
class ColorAssigner {
 public:
  /// When `use_ansi` is false, Wrap() returns the text unstyled (for piping
  /// into files) and ColorOf still provides stable palette indices.
  explicit ColorAssigner(bool use_ansi = true) : use_ansi_(use_ansi) {}

  /// Stable palette index for a label (first-come, first-served).
  int ColorOf(int64_t label);

  /// Wraps `text` in the ANSI color assigned to `label`.
  std::string Wrap(int64_t label, const std::string& text);

  /// Number of distinct labels seen so far.
  size_t distinct_labels() const { return colors_.size(); }

 private:
  bool use_ansi_;
  std::map<int64_t, int> colors_;
};

/// One recorded Connected Components frame.
struct ComponentsFrame {
  int iteration = 0;
  /// labels[v] = current component label of vertex v.
  std::vector<int64_t> labels;
  /// Vertices whose partition was lost this iteration (highlighted).
  std::set<int64_t> lost_vertices;
  bool failure = false;
  int64_t messages = 0;
  int64_t converged_vertices = -1;  // -1 when no ground truth was supplied
};

/// Renders one CC frame: vertices grouped by component, colors stable via
/// `colors`, lost vertices marked with '!'.
std::string RenderComponents(const ComponentsFrame& frame,
                             ColorAssigner* colors);

/// One recorded PageRank frame.
struct RanksFrame {
  int iteration = 0;
  std::vector<double> ranks;
  std::set<int64_t> lost_vertices;
  bool failure = false;
  double l1_diff = 0.0;
  int64_t converged_vertices = -1;
};

/// Renders one PageRank frame: one bar per vertex, width proportional to
/// rank (the paper's vertex size), lost vertices marked with '!'.
std::string RenderRanks(const RanksFrame& frame, int bar_width = 50);

/// End-of-run metrics v2 dashboard: one bar block per partition-labeled
/// counter family (records per partition, shuffle fan-out, compensation
/// records — the skew picture at a glance), a one-line distribution summary
/// per histogram, and the job-level counter rollup. Families the run never
/// recorded are omitted.
std::string RenderMetricsDashboard(const runtime::MetricsSnapshot& snapshot);

/// Lists the vertices per partition under the engine's hash partitioning —
/// printed once at demo start so attendees know what clicking "fail
/// partition p" will destroy.
std::string DescribePartitions(int64_t num_vertices, int num_partitions);

/// The vertex ids that live in the given partitions.
std::set<int64_t> VerticesOfPartitions(int64_t num_vertices,
                                       int num_partitions,
                                       const std::vector<int>& partitions);

}  // namespace flinkless::viz

#endif  // FLINKLESS_VIZ_RENDER_H_
