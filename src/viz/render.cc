#include "viz/render.h"

#include <algorithm>
#include <cstdio>

#include "algos/datasets.h"
#include "common/strings.h"

namespace flinkless::viz {

namespace {
// Eight distinguishable ANSI foreground colors (bright variants).
constexpr int kPaletteSize = 8;
const char* kAnsiCodes[kPaletteSize] = {
    "\x1b[91m", "\x1b[92m", "\x1b[93m", "\x1b[94m",
    "\x1b[95m", "\x1b[96m", "\x1b[97m", "\x1b[90m",
};
constexpr const char* kAnsiReset = "\x1b[0m";
}  // namespace

int ColorAssigner::ColorOf(int64_t label) {
  auto it = colors_.find(label);
  if (it != colors_.end()) return it->second;
  int color = static_cast<int>(colors_.size()) % kPaletteSize;
  colors_.emplace(label, color);
  return color;
}

std::string ColorAssigner::Wrap(int64_t label, const std::string& text) {
  int color = ColorOf(label);
  if (!use_ansi_) return text;
  return std::string(kAnsiCodes[color]) + text + kAnsiReset;
}

std::string RenderComponents(const ComponentsFrame& frame,
                             ColorAssigner* colors) {
  std::string out = "iteration " + std::to_string(frame.iteration);
  if (frame.failure) out += "  ** FAILURE + COMPENSATION **";
  out += "\n";

  // Group vertices by current label.
  std::map<int64_t, std::vector<int64_t>> components;
  for (size_t v = 0; v < frame.labels.size(); ++v) {
    components[frame.labels[v]].push_back(static_cast<int64_t>(v));
  }
  out += "  components: " + std::to_string(components.size()) + "\n";
  for (const auto& [label, vertices] : components) {
    std::string line = "  [" + std::to_string(label) + "] ";
    for (int64_t v : vertices) {
      std::string cell = std::to_string(v);
      if (frame.lost_vertices.count(v) > 0) cell += "!";
      line += colors->Wrap(label, cell) + " ";
    }
    out += line + "\n";
  }
  if (frame.converged_vertices >= 0) {
    out += "  converged to final component: " +
           std::to_string(frame.converged_vertices) + "/" +
           std::to_string(frame.labels.size()) + "\n";
  }
  out += "  messages this iteration: " + std::to_string(frame.messages) +
         "\n";
  return out;
}

std::string RenderRanks(const RanksFrame& frame, int bar_width) {
  std::string out = "iteration " + std::to_string(frame.iteration);
  if (frame.failure) out += "  ** FAILURE + COMPENSATION **";
  out += "\n";
  double max_rank = 0;
  for (double r : frame.ranks) max_rank = std::max(max_rank, r);
  if (max_rank <= 0) max_rank = 1;
  for (size_t v = 0; v < frame.ranks.size(); ++v) {
    int width = static_cast<int>(frame.ranks[v] / max_rank * bar_width + 0.5);
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "  v%-3zu %8.5f ", v,
                  frame.ranks[v]);
    out += prefix;
    out += std::string(std::max(width, frame.ranks[v] > 0 ? 1 : 0), '#');
    if (frame.lost_vertices.count(static_cast<int64_t>(v)) > 0) out += " !";
    out += "\n";
  }
  if (frame.converged_vertices >= 0) {
    out += "  converged to true rank: " +
           std::to_string(frame.converged_vertices) + "/" +
           std::to_string(frame.ranks.size()) + "\n";
  }
  out += "  L1 diff vs previous iteration: " + FormatDouble(frame.l1_diff) +
         "\n";
  return out;
}

std::string RenderMetricsDashboard(const runtime::MetricsSnapshot& snapshot) {
  constexpr int kBarWidth = 40;
  std::string out = "metrics dashboard:\n";
  bool empty = true;

  // Partition-labeled counter families as bars scaled to the hottest
  // partition, so skew is visible without reading the numbers.
  for (const auto& [name, by_partition] : snapshot.counters) {
    uint64_t max_value = 0;
    int labeled = 0;
    for (const auto& [p, value] : by_partition) {
      if (p < 0) continue;
      ++labeled;
      max_value = std::max(max_value, value);
    }
    if (labeled == 0) continue;
    empty = false;
    out += "  " + name + " (total " +
           std::to_string(snapshot.CounterTotal(name)) + "):\n";
    for (const auto& [p, value] : by_partition) {
      if (p < 0) continue;
      int width = max_value == 0
                      ? 0
                      : static_cast<int>(value * static_cast<uint64_t>(
                                                     kBarWidth) /
                                         max_value);
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "    p%-3d %12llu ", p,
                    static_cast<unsigned long long>(value));
      out += prefix;
      out += std::string(value > 0 ? std::max(width, 1) : 0, '#');
      out += "\n";
    }
  }

  // Histograms as one-line distribution summaries.
  for (const auto& [name, hist] : snapshot.histograms) {
    if (hist.count() == 0) continue;
    empty = false;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %s: count=%llu mean=%.1f min=%lld max=%lld\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count()),
                  hist.Mean(), static_cast<long long>(hist.min()),
                  static_cast<long long>(hist.max()));
    out += line;
  }

  // Families that only ever counted at the job level (partition -1).
  std::string rollup;
  for (const auto& [name, by_partition] : snapshot.counters) {
    bool job_only = by_partition.size() == 1 && by_partition.count(-1) > 0;
    if (!job_only) continue;
    rollup += "    " + name + " = " + std::to_string(by_partition.at(-1)) +
              "\n";
  }
  if (!rollup.empty()) {
    empty = false;
    out += "  job counters:\n" + rollup;
  }
  if (empty) out += "  (no metrics recorded)\n";
  return out;
}

std::set<int64_t> VerticesOfPartitions(int64_t num_vertices,
                                       int num_partitions,
                                       const std::vector<int>& partitions) {
  std::set<int> wanted(partitions.begin(), partitions.end());
  std::set<int64_t> vertices;
  for (int64_t v = 0; v < num_vertices; ++v) {
    if (wanted.count(algos::PartitionOfVertex(v, num_partitions)) > 0) {
      vertices.insert(v);
    }
  }
  return vertices;
}

std::string DescribePartitions(int64_t num_vertices, int num_partitions) {
  std::string out = "partition layout (" + std::to_string(num_partitions) +
                    " partitions):\n";
  for (int p = 0; p < num_partitions; ++p) {
    out += "  partition " + std::to_string(p) + ":";
    for (int64_t v = 0; v < num_vertices; ++v) {
      if (algos::PartitionOfVertex(v, num_partitions) == p) {
        out += " " + std::to_string(v);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace flinkless::viz
