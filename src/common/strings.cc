#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flinkless {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps
  // this portable; we copy to guarantee NUL termination.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace flinkless
