// Minimal leveled logging and CHECK macros.
//
// Log lines go to stderr as "[LEVEL] message". The active level is a process
// global; benchmarks lower it to kWarning to keep output machine-readable.

#ifndef FLINKLESS_COMMON_LOGGING_H_
#define FLINKLESS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace flinkless {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Currently active minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Terminates the process. FLINKLESS_CHECK calls this *after* the fatal
/// LogMessage has been destroyed (= emitted), so a failed check aborts even
/// if message emission is ever filtered, hooked, or throws on the way out —
/// the abort does not depend on the destructor's side effects.
[[noreturn]] void FatalAbort();

/// Swallows the streamed expression when the level is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace flinkless

#define FLINKLESS_LOG_AT(level)                                      \
  (static_cast<int>(level) < static_cast<int>(::flinkless::GetLogLevel())) \
      ? void(0)                                                      \
      : (void)::flinkless::internal::LogMessage(level, __FILE__, __LINE__) \
            .stream()

#define FLOG_DEBUG(msg)                                                     \
  do {                                                                      \
    if (static_cast<int>(::flinkless::LogLevel::kDebug) >=                  \
        static_cast<int>(::flinkless::GetLogLevel()))                       \
      ::flinkless::internal::LogMessage(::flinkless::LogLevel::kDebug,      \
                                        __FILE__, __LINE__)                 \
              .stream()                                                     \
          << msg;                                                           \
  } while (0)

#define FLOG_INFO(msg)                                                      \
  do {                                                                      \
    if (static_cast<int>(::flinkless::LogLevel::kInfo) >=                   \
        static_cast<int>(::flinkless::GetLogLevel()))                       \
      ::flinkless::internal::LogMessage(::flinkless::LogLevel::kInfo,       \
                                        __FILE__, __LINE__)                 \
              .stream()                                                     \
          << msg;                                                           \
  } while (0)

#define FLOG_WARN(msg)                                                      \
  do {                                                                      \
    if (static_cast<int>(::flinkless::LogLevel::kWarning) >=                \
        static_cast<int>(::flinkless::GetLogLevel()))                       \
      ::flinkless::internal::LogMessage(::flinkless::LogLevel::kWarning,    \
                                        __FILE__, __LINE__)                 \
              .stream()                                                     \
          << msg;                                                           \
  } while (0)

#define FLOG_ERROR(msg)                                                     \
  do {                                                                      \
    ::flinkless::internal::LogMessage(::flinkless::LogLevel::kError,        \
                                      __FILE__, __LINE__)                   \
            .stream()                                                       \
        << msg;                                                             \
  } while (0)

/// Aborts the process with a message when `cond` does not hold. Used for
/// internal invariants, never for user input (user input yields Status).
/// The message is emitted by the LogMessage's destructor (inner scope), and
/// FatalAbort() then terminates unconditionally — so the abort is guaranteed
/// even if emission was suppressed, and the compiler can see the false
/// branch never falls through.
#define FLINKLESS_CHECK(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      {                                                                     \
        ::flinkless::internal::LogMessage(::flinkless::LogLevel::kFatal,    \
                                          __FILE__, __LINE__)               \
                .stream()                                                   \
            << "CHECK failed: " #cond ": " << msg;                          \
      }                                                                     \
      ::flinkless::internal::FatalAbort();                                  \
    }                                                                       \
  } while (0)

#endif  // FLINKLESS_COMMON_LOGGING_H_
