// TablePrinter: aligned ASCII tables and CSV output for the benchmark
// harnesses. Every experiment binary prints its series through this class so
// the output is uniform and machine-parsable.

#ifndef FLINKLESS_COMMON_TABLE_H_
#define FLINKLESS_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace flinkless {

/// Collects rows of string cells and renders them either as an aligned ASCII
/// table or as CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: builds the row by formatting each value.
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter* table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& Cell(const std::string& v);
    RowBuilder& Cell(const char* v);
    RowBuilder& Cell(int64_t v);
    RowBuilder& Cell(uint64_t v);
    RowBuilder& Cell(int v);
    RowBuilder& Cell(double v);

   private:
    TablePrinter* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned ASCII table with a header separator.
  void PrintAscii(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a crude ASCII plot of `values` (one column per value, `height`
/// rows), used by the demo drivers to mimic the paper's GUI statistic plots.
std::string AsciiPlot(const std::vector<double>& values, int height,
                      const std::string& title);

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_TABLE_H_
