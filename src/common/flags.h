// FlagParser: minimal --name=value command-line parsing for the example
// binaries (the terminal stand-ins for the paper's GUI controls).

#ifndef FLINKLESS_COMMON_FLAGS_H_
#define FLINKLESS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace flinkless {

/// Declares flags, parses argv, and reports unknown or malformed flags.
/// Usage:
///   FlagParser flags;
///   int64_t* iters = flags.Int64("max-iterations", 20, "superstep cap");
///   bool* fast = flags.Bool("fast", false, "skip the per-iteration delay");
///   FLINKLESS_RETURN_NOT_OK(flags.Parse(argc, argv));
class FlagParser {
 public:
  /// Registers an int64 flag; the returned pointer is stable and holds the
  /// default until Parse() overwrites it.
  int64_t* Int64(const std::string& name, int64_t default_value,
                 const std::string& help);

  /// Registers a double flag.
  double* Double(const std::string& name, double default_value,
                 const std::string& help);

  /// Registers a string flag.
  std::string* String(const std::string& name, std::string default_value,
                      const std::string& help);

  /// Registers a bool flag; accepts --name, --name=true/false/1/0.
  bool* Bool(const std::string& name, bool default_value,
             const std::string& help);

  /// Parses argv (skipping argv[0]). Returns InvalidArgument for unknown
  /// flags, bad values, or positional arguments.
  Status Parse(int argc, const char* const* argv);

  /// One line per flag: "--name (default: x)  help".
  std::string Usage() const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string default_text;
    // Exactly one is used, selected by kind.
    int64_t int64_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
  };

  Flag* Register(const std::string& name, Kind kind, const std::string& help);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_FLAGS_H_
