#include "common/table.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace flinkless {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(
    const std::string& v) {
  cells_.push_back(v);
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(const char* v) {
  cells_.emplace_back(v);
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(double v) {
  cells_.push_back(FormatDouble(v));
  return *this;
}

void TablePrinter::PrintAscii(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      os << CsvEscape(c < row.size() ? row[c] : std::string());
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string AsciiPlot(const std::vector<double>& values, int height,
                      const std::string& title) {
  std::string out = title + "\n";
  if (values.empty() || height <= 0) return out + "(no data)\n";
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span = hi - lo;
  if (span <= 0) span = 1.0;
  // Rows from top (hi) to bottom (lo).
  for (int r = height - 1; r >= 0; --r) {
    double cut = lo + span * r / height;
    std::string line = "  ";
    for (double v : values) {
      line += (v > cut || (r == 0 && v >= lo)) ? '#' : ' ';
    }
    out += line + "\n";
  }
  out += "  " + std::string(values.size(), '-') + "\n";
  out += "  min=" + FormatDouble(lo) + " max=" + FormatDouble(hi) +
         " n=" + std::to_string(values.size()) + "\n";
  return out;
}

}  // namespace flinkless
