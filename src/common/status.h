// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h). Statuses carry a code and a human-readable
// message. The OK status is cheap to construct and copy.

#ifndef FLINKLESS_COMMON_STATUS_H_
#define FLINKLESS_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace flinkless {

/// Error category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kAborted = 8,
  kDataLoss = 9,
  kIOError = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. Cheap to move; the OK status
/// allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories below.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// return Status.
#define FLINKLESS_RETURN_NOT_OK(expr)            \
  do {                                           \
    ::flinkless::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_STATUS_H_
