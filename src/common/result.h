// Result<T>: a value or a Status, in the spirit of arrow::Result /
// absl::StatusOr. Accessing the value of an errored Result aborts the
// process (programming error), mirroring the CHECK-fail behaviour of the
// reference libraries.

#ifndef FLINKLESS_COMMON_RESULT_H_
#define FLINKLESS_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace flinkless {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Constructing from an OK status is a
  /// programming error and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }

  /// Status of the computation; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Aborts if !ok().
  const T& ValueOrDie() const& {
    EnsureOk();
    return *value_;
  }
  T& ValueOrDie() & {
    EnsureOk();
    return *value_;
  }
  T ValueOrDie() && {
    EnsureOk();
    return std::move(*value_);
  }

  /// The contained value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result<T>::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result expression, otherwise assigns its value:
///   FLINKLESS_ASSIGN_OR_RETURN(auto x, ComputeX());
#define FLINKLESS_RESULT_CONCAT_INNER_(a, b) a##b
#define FLINKLESS_RESULT_CONCAT_(a, b) FLINKLESS_RESULT_CONCAT_INNER_(a, b)
#define FLINKLESS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                      \
  if (!tmp.ok()) {                                        \
    return tmp.status();                                  \
  }                                                       \
  decl = std::move(tmp).ValueOrDie()
#define FLINKLESS_ASSIGN_OR_RETURN(decl, expr)                             \
  FLINKLESS_ASSIGN_OR_RETURN_IMPL_(                                        \
      FLINKLESS_RESULT_CONCAT_(_flinkless_result_, __LINE__), decl, expr)

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_RESULT_H_
