#include "common/hash.h"

#include <cmath>
#include <cstring>

namespace flinkless {

uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  // Extra avalanche: FNV-1a alone is weak in the low bits.
  return Mix64(h);
}

uint64_t HashDouble(double d) {
  if (std::isnan(d)) return Mix64(0x7ff8000000000000ULL);
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

}  // namespace flinkless
