// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the system (graph generators, failure schedules,
// workload shuffling) take an explicit Rng so that every experiment is
// reproducible from a seed. The generator is xoshiro256**, seeded through
// SplitMix64 as its authors recommend.

#ifndef FLINKLESS_COMMON_RNG_H_
#define FLINKLESS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flinkless {

/// Deterministic 64-bit PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A distinct sample of k indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_RNG_H_
