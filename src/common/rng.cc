#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace flinkless {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FLINKLESS_CHECK(bound > 0, "NextBounded requires bound > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  FLINKLESS_CHECK(lo <= hi, "NextInRange requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FLINKLESS_CHECK(k <= n, "sample size exceeds population");
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    bool present = false;
    for (size_t v : out) {
      if (v == t) {
        present = true;
        break;
      }
    }
    if (present) {
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace flinkless
