// Hashing used for shuffle partitioning and hash joins.
//
// Partitioning quality matters: a biased hash would skew partition sizes and
// distort the message counts the experiments report, so we use a
// finalized-avalanche 64-bit mix (MurmurHash3 finalizer) rather than identity
// hashing of keys.

#ifndef FLINKLESS_COMMON_HASH_H_
#define FLINKLESS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace flinkless {

/// MurmurHash3 64-bit finalizer: full-avalanche mix of one 64-bit word.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash with a new value, order-dependent (boost::hash_combine
/// style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over raw bytes.
uint64_t HashBytes(const void* data, size_t len);

/// FNV-1a over a string.
inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Hash of a double that respects equality (0.0 == -0.0, NaNs collapse).
uint64_t HashDouble(double d);

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_HASH_H_
