#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace flinkless {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ == LogLevel::kFatal) {
    // Fatal lines carry the source location and bypass the level filter —
    // a crashing process must always say where it died.
    std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file_, line_,
                 stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

void FatalAbort() {
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace flinkless
