// Small string helpers shared across modules.

#ifndef FLINKLESS_COMMON_STRINGS_H_
#define FLINKLESS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace flinkless {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed 64-bit integer. Returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double. Returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("1.25", "3", "0.001").
std::string FormatDouble(double value, int digits = 6);

/// Human-readable byte count ("1.5 KiB", "3.2 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace flinkless

#endif  // FLINKLESS_COMMON_STRINGS_H_
