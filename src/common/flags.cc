#include "common/flags.h"

#include "common/logging.h"
#include "common/strings.h"

namespace flinkless {

FlagParser::Flag* FlagParser::Register(const std::string& name, Kind kind,
                                       const std::string& help) {
  FLINKLESS_CHECK(flags_.count(name) == 0,
                  "flag '" << name << "' registered twice");
  Flag flag;
  flag.kind = kind;
  flag.help = help;
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  (void)inserted;
  order_.push_back(name);
  return &it->second;
}

int64_t* FlagParser::Int64(const std::string& name, int64_t default_value,
                           const std::string& help) {
  Flag* flag = Register(name, Kind::kInt64, help);
  flag->int64_value = default_value;
  flag->default_text = std::to_string(default_value);
  return &flag->int64_value;
}

double* FlagParser::Double(const std::string& name, double default_value,
                           const std::string& help) {
  Flag* flag = Register(name, Kind::kDouble, help);
  flag->double_value = default_value;
  flag->default_text = FormatDouble(default_value);
  return &flag->double_value;
}

std::string* FlagParser::String(const std::string& name,
                                std::string default_value,
                                const std::string& help) {
  Flag* flag = Register(name, Kind::kString, help);
  flag->string_value = std::move(default_value);
  flag->default_text = "\"" + flag->string_value + "\"";
  return &flag->string_value;
}

bool* FlagParser::Bool(const std::string& name, bool default_value,
                       const std::string& help) {
  Flag* flag = Register(name, Kind::kBool, help);
  flag->bool_value = default_value;
  flag->default_text = default_value ? "true" : "false";
  return &flag->bool_value;
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     std::string(arg) + "'");
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool has_value = false;
    auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      name = std::string(arg);
    } else {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag '--" + name + "'\n" +
                                     Usage());
    }
    Flag& flag = it->second;
    switch (flag.kind) {
      case Kind::kBool:
        if (!has_value) {
          flag.bool_value = true;
        } else if (value == "true" || value == "1") {
          flag.bool_value = true;
        } else if (value == "false" || value == "0") {
          flag.bool_value = false;
        } else {
          return Status::InvalidArgument("bad bool for --" + name + ": '" +
                                         value + "'");
        }
        break;
      case Kind::kInt64:
        if (!has_value || !ParseInt64(value, &flag.int64_value)) {
          return Status::InvalidArgument("bad int for --" + name + ": '" +
                                         value + "'");
        }
        break;
      case Kind::kDouble:
        if (!has_value || !ParseDouble(value, &flag.double_value)) {
          return Status::InvalidArgument("bad double for --" + name + ": '" +
                                         value + "'");
        }
        break;
      case Kind::kString:
        if (!has_value) {
          return Status::InvalidArgument("--" + name + " needs a value");
        }
        flag.string_value = value;
        break;
    }
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string out = "flags:\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name + " (default: " + flag.default_text + ")  " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace flinkless
