// Graph generators.
//
// The demo runs on "either a small hand-crafted graph or a larger graph
// derived from real-world data" (a Twitter follower snapshot). We provide a
// hand-crafted demo graph shaped like the paper's Figures 2/3 (a few
// clearly separated components) and, since the Twitter snapshot is not
// redistributable, two heavy-tailed synthetic generators (preferential
// attachment and RMAT) whose degree skew reproduces the convergence
// behaviour the demo visualizes on the real graph. See DESIGN.md §2.

#ifndef FLINKLESS_GRAPH_GENERATORS_H_
#define FLINKLESS_GRAPH_GENERATORS_H_

#include "common/rng.h"
#include "graph/graph.h"

namespace flinkless::graph {

/// The small hand-crafted demo graph: 16 vertices in 3 connected
/// components of different shapes (a path-heavy component, a clique-ish
/// component, a star), mirroring the visual demo of Figures 2/3.
Graph DemoGraph();

/// A tiny directed graph with a clear rank hierarchy and one dangling
/// vertex, used for the PageRank walkthrough (Figures 4/5).
Graph DemoDirectedGraph();

/// G(n, p) Erdős–Rényi. Undirected, no self-loops, no duplicate edges.
Graph ErdosRenyi(int64_t n, double p, Rng* rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Produces the heavy-tailed degree distribution of social graphs.
Graph PreferentialAttachment(int64_t n, int edges_per_vertex, Rng* rng);

/// RMAT (Chakrabarti et al.) recursive-matrix generator with the canonical
/// Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) by default.
/// Directed; produces 2^scale vertices and edge_factor * 2^scale edges.
Graph Rmat(int scale, int edge_factor, Rng* rng, double a = 0.57,
           double b = 0.19, double c = 0.19);

/// rows x cols 4-neighbor grid (undirected).
Graph GridGraph(int64_t rows, int64_t cols);

/// Path 0-1-2-...-(n-1) (undirected). Worst case for label propagation.
Graph ChainGraph(int64_t n);

/// Star: vertex 0 connected to all others (undirected).
Graph StarGraph(int64_t n);

/// `k` disjoint chains of `chain_length` vertices each (undirected) —
/// a graph with a known number of components for property tests.
Graph DisjointChains(int64_t k, int64_t chain_length);

}  // namespace flinkless::graph

#endif  // FLINKLESS_GRAPH_GENERATORS_H_
