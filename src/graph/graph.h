// Graph: the input datasets of the demo's algorithms. Vertices are dense
// ids [0, num_vertices). Directed graphs feed PageRank (the "links" input),
// undirected graphs feed Connected Components (the "graph" input).

#ifndef FLINKLESS_GRAPH_GRAPH_H_
#define FLINKLESS_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace flinkless::graph {

/// A directed edge (for undirected graphs, stored once in either
/// orientation).
struct Edge {
  int64_t src = 0;
  int64_t dst = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Edge-list graph with an on-demand CSR adjacency index.
class Graph {
 public:
  /// An empty graph over `num_vertices` vertices.
  explicit Graph(int64_t num_vertices = 0, bool directed = false)
      : num_vertices_(num_vertices), directed_(directed) {}

  /// Builds a graph from an edge list; fails on out-of-range endpoints.
  static Result<Graph> FromEdges(int64_t num_vertices, bool directed,
                                 std::vector<Edge> edges);

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  bool directed() const { return directed_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Adds one edge; self-loops are allowed, duplicates are kept.
  Status AddEdge(int64_t src, int64_t dst);

  /// Out-neighbors of `v` (for undirected graphs: all neighbors). Builds the
  /// CSR index on first use; adding edges invalidates it.
  const std::vector<int64_t>& Neighbors(int64_t v) const;

  /// Out-degree of `v` (undirected: degree).
  int64_t OutDegree(int64_t v) const;

  /// Number of vertices with no outgoing edge (PageRank's dangling
  /// vertices; 0 for undirected graphs with at least one incident edge per
  /// vertex).
  int64_t CountDangling() const;

  /// "Graph(directed, 42 vertices, 107 edges)".
  std::string ToString() const;

 private:
  void EnsureCsr() const;

  int64_t num_vertices_;
  bool directed_;
  std::vector<Edge> edges_;

  // Adjacency cache (lazily built; mutable because building it does not
  // change the logical graph).
  mutable bool csr_valid_ = false;
  mutable std::vector<std::vector<int64_t>> adjacency_;
};

}  // namespace flinkless::graph

#endif  // FLINKLESS_GRAPH_GRAPH_H_
