// Text edge-list I/O ("src dst" per line, '#' comments), the format of the
// SNAP datasets the original demo's Twitter snapshot ships in.

#ifndef FLINKLESS_GRAPH_IO_H_
#define FLINKLESS_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace flinkless::graph {

/// Parses an edge list from a string. Vertex ids must be dense 0-based; the
/// vertex count is max id + 1 unless `num_vertices` (>0) overrides it.
Result<Graph> ParseEdgeList(const std::string& text, bool directed,
                            int64_t num_vertices = -1);

/// Loads an edge-list file.
Result<Graph> LoadEdgeList(const std::string& path, bool directed,
                           int64_t num_vertices = -1);

/// Serializes a graph back to edge-list text (with a header comment).
std::string ToEdgeListText(const Graph& graph);

/// Writes a graph to an edge-list file.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace flinkless::graph

#endif  // FLINKLESS_GRAPH_IO_H_
