#include "graph/reference.h"

#include <cmath>
#include <deque>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace flinkless::graph {

namespace {

/// Union-find with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(int64_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int64_t a, int64_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
};

}  // namespace

std::vector<int64_t> ReferenceConnectedComponents(const Graph& graph) {
  const int64_t n = graph.num_vertices();
  DisjointSets sets(n);
  for (const Edge& e : graph.edges()) sets.Union(e.src, e.dst);
  // Minimum vertex id per component root.
  std::vector<int64_t> min_label(n, -1);
  for (int64_t v = 0; v < n; ++v) {
    int64_t root = sets.Find(v);
    if (min_label[root] < 0 || v < min_label[root]) min_label[root] = v;
  }
  std::vector<int64_t> labels(n);
  for (int64_t v = 0; v < n; ++v) labels[v] = min_label[sets.Find(v)];
  return labels;
}

int64_t CountComponents(const std::vector<int64_t>& labels) {
  std::set<int64_t> distinct(labels.begin(), labels.end());
  return static_cast<int64_t>(distinct.size());
}

std::vector<double> ReferencePageRank(const Graph& graph, double damping,
                                      int max_iterations, double tolerance) {
  FLINKLESS_CHECK(graph.directed(), "PageRank expects a directed graph");
  const int64_t n = graph.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      const auto& out = graph.Neighbors(v);
      if (out.empty()) {
        dangling_mass += rank[v];
        continue;
      }
      double share = rank[v] / static_cast<double>(out.size());
      for (int64_t u : out) next[u] += share;
    }
    double teleport = (1.0 - damping) / static_cast<double>(n);
    double dangling_share = damping * dangling_mass / static_cast<double>(n);
    double l1 = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      next[v] = teleport + damping * next[v] + dangling_share;
      l1 += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (l1 < tolerance) break;
  }
  return rank;
}

std::vector<int64_t> ReferenceSssp(const Graph& graph, int64_t source) {
  const int64_t n = graph.num_vertices();
  FLINKLESS_CHECK(source >= 0 && source < n, "sssp source out of range");
  std::vector<int64_t> dist(n, -1);
  std::deque<int64_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    int64_t v = frontier.front();
    frontier.pop_front();
    for (int64_t u : graph.Neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace flinkless::graph
