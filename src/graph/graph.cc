#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace flinkless::graph {

Result<Graph> Graph::FromEdges(int64_t num_vertices, bool directed,
                               std::vector<Edge> edges) {
  Graph g(num_vertices, directed);
  for (const Edge& e : edges) {
    FLINKLESS_RETURN_NOT_OK(g.AddEdge(e.src, e.dst));
  }
  return g;
}

Status Graph::AddEdge(int64_t src, int64_t dst) {
  if (src < 0 || src >= num_vertices_ || dst < 0 || dst >= num_vertices_) {
    return Status::OutOfRange(
        "edge (" + std::to_string(src) + ", " + std::to_string(dst) +
        ") out of range for " + std::to_string(num_vertices_) + " vertices");
  }
  edges_.push_back({src, dst});
  csr_valid_ = false;
  return Status::OK();
}

void Graph::EnsureCsr() const {
  if (csr_valid_) return;
  adjacency_.assign(num_vertices_, {});
  for (const Edge& e : edges_) {
    adjacency_[e.src].push_back(e.dst);
    if (!directed_ && e.src != e.dst) adjacency_[e.dst].push_back(e.src);
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  csr_valid_ = true;
}

const std::vector<int64_t>& Graph::Neighbors(int64_t v) const {
  FLINKLESS_CHECK(v >= 0 && v < num_vertices_,
                  "vertex " << v << " out of range");
  EnsureCsr();
  return adjacency_[v];
}

int64_t Graph::OutDegree(int64_t v) const {
  return static_cast<int64_t>(Neighbors(v).size());
}

int64_t Graph::CountDangling() const {
  EnsureCsr();
  int64_t dangling = 0;
  for (int64_t v = 0; v < num_vertices_; ++v) {
    if (adjacency_[v].empty()) ++dangling;
  }
  return dangling;
}

std::string Graph::ToString() const {
  return std::string("Graph(") + (directed_ ? "directed" : "undirected") +
         ", " + std::to_string(num_vertices_) + " vertices, " +
         std::to_string(num_edges()) + " edges)";
}

}  // namespace flinkless::graph
