// Reference solvers: sequential, well-understood implementations of the
// demo's algorithms. They serve two purposes:
//   1. Ground truth for correctness tests — the dataflow version must agree
//      regardless of partitioning, failures and recovery strategy.
//   2. The paper precomputes the "true" values to plot the number of
//      vertices converged to their final result per iteration; these
//      solvers provide that precomputation.

#ifndef FLINKLESS_GRAPH_REFERENCE_H_
#define FLINKLESS_GRAPH_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace flinkless::graph {

/// Connected components via union-find. Returns, per vertex, the minimum
/// vertex id of its component (the same labels the diffusion algorithm
/// converges to).
std::vector<int64_t> ReferenceConnectedComponents(const Graph& graph);

/// Number of distinct components in a labeling.
int64_t CountComponents(const std::vector<int64_t>& labels);

/// PageRank by dense power iteration with uniform teleport and uniform
/// redistribution of dangling mass. Iterates until the L1 difference drops
/// below `tolerance` (or `max_iterations`). Matches the dataflow PageRank's
/// fixpoint.
std::vector<double> ReferencePageRank(const Graph& graph, double damping,
                                      int max_iterations, double tolerance);

/// Single-source shortest paths with unit edge weights (BFS). Unreachable
/// vertices get -1.
std::vector<int64_t> ReferenceSssp(const Graph& graph, int64_t source);

}  // namespace flinkless::graph

#endif  // FLINKLESS_GRAPH_REFERENCE_H_
