#include "graph/generators.h"

#include <set>
#include <utility>

#include "common/logging.h"

namespace flinkless::graph {

Graph DemoGraph() {
  // 16 vertices, 3 components:
  //   component A (min label 0): a ring 0-1-2-3-4-5-0 with chord 1-4
  //   component B (min label 6): a near-clique 6,7,8,9 plus appendage 10
  //   component C (min label 11): a star centered at 11 with leaves 12..15
  Graph g(16, /*directed=*/false);
  auto add = [&](int64_t u, int64_t v) {
    Status s = g.AddEdge(u, v);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  };
  add(0, 1);
  add(1, 2);
  add(2, 3);
  add(3, 4);
  add(4, 5);
  add(5, 0);
  add(1, 4);
  add(6, 7);
  add(6, 8);
  add(6, 9);
  add(7, 8);
  add(7, 9);
  add(8, 9);
  add(9, 10);
  add(11, 12);
  add(11, 13);
  add(11, 14);
  add(11, 15);
  return g;
}

Graph DemoDirectedGraph() {
  // 10 vertices. Vertex 0 is an authority many pages link to; vertex 9 is
  // dangling (no out-links) so the dangling-mass path is exercised even in
  // the walkthrough.
  Graph g(10, /*directed=*/true);
  auto add = [&](int64_t u, int64_t v) {
    Status s = g.AddEdge(u, v);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  };
  add(1, 0);
  add(2, 0);
  add(3, 0);
  add(4, 0);
  add(0, 1);
  add(1, 2);
  add(2, 3);
  add(3, 4);
  add(4, 5);
  add(5, 6);
  add(6, 7);
  add(7, 8);
  add(8, 9);
  add(5, 0);
  add(6, 1);
  add(7, 2);
  return g;
}

Graph ErdosRenyi(int64_t n, double p, Rng* rng) {
  Graph g(n, /*directed=*/false);
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v = u + 1; v < n; ++v) {
      if (rng->NextBernoulli(p)) {
        Status s = g.AddEdge(u, v);
        FLINKLESS_CHECK(s.ok(), s.ToString());
      }
    }
  }
  return g;
}

Graph PreferentialAttachment(int64_t n, int edges_per_vertex, Rng* rng) {
  FLINKLESS_CHECK(n >= 2 && edges_per_vertex >= 1,
                  "preferential attachment needs n >= 2, m >= 1");
  Graph g(n, /*directed=*/false);
  // Repeated-endpoints list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<int64_t> endpoints;
  auto add = [&](int64_t u, int64_t v) {
    Status s = g.AddEdge(u, v);
    FLINKLESS_CHECK(s.ok(), s.ToString());
    endpoints.push_back(u);
    endpoints.push_back(v);
  };
  add(0, 1);
  for (int64_t v = 2; v < n; ++v) {
    int64_t m = std::min<int64_t>(edges_per_vertex, v);
    std::set<int64_t> chosen;
    // Degree-proportional sampling with rejection of duplicates.
    int attempts = 0;
    while (static_cast<int64_t>(chosen.size()) < m) {
      int64_t target =
          endpoints[rng->NextBounded(endpoints.size())];
      if (target != v) chosen.insert(target);
      if (++attempts > 64 * m) {
        // Extremely unlikely fallback: fill with uniform picks.
        while (static_cast<int64_t>(chosen.size()) < m) {
          int64_t t = static_cast<int64_t>(rng->NextBounded(v));
          chosen.insert(t);
        }
        break;
      }
    }
    for (int64_t target : chosen) add(v, target);
  }
  return g;
}

Graph Rmat(int scale, int edge_factor, Rng* rng, double a, double b,
           double c) {
  FLINKLESS_CHECK(scale >= 1 && scale < 31, "rmat scale out of range");
  FLINKLESS_CHECK(a + b + c < 1.0 + 1e-9, "rmat probabilities exceed 1");
  const int64_t n = int64_t{1} << scale;
  const int64_t m = n * edge_factor;
  Graph g(n, /*directed=*/true);
  for (int64_t e = 0; e < m; ++e) {
    int64_t src = 0, dst = 0;
    for (int level = 0; level < scale; ++level) {
      double r = rng->NextDouble();
      int64_t bit_src = 0, bit_dst = 0;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        bit_dst = 1;
      } else if (r < a + b + c) {
        bit_src = 1;
      } else {
        bit_src = 1;
        bit_dst = 1;
      }
      src = (src << 1) | bit_src;
      dst = (dst << 1) | bit_dst;
    }
    Status s = g.AddEdge(src, dst);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  }
  return g;
}

Graph GridGraph(int64_t rows, int64_t cols) {
  Graph g(rows * cols, /*directed=*/false);
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        Status s = g.AddEdge(id(r, c), id(r, c + 1));
        FLINKLESS_CHECK(s.ok(), s.ToString());
      }
      if (r + 1 < rows) {
        Status s = g.AddEdge(id(r, c), id(r + 1, c));
        FLINKLESS_CHECK(s.ok(), s.ToString());
      }
    }
  }
  return g;
}

Graph ChainGraph(int64_t n) {
  Graph g(n, /*directed=*/false);
  for (int64_t v = 0; v + 1 < n; ++v) {
    Status s = g.AddEdge(v, v + 1);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  }
  return g;
}

Graph StarGraph(int64_t n) {
  Graph g(n, /*directed=*/false);
  for (int64_t v = 1; v < n; ++v) {
    Status s = g.AddEdge(0, v);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  }
  return g;
}

Graph DisjointChains(int64_t k, int64_t chain_length) {
  Graph g(k * chain_length, /*directed=*/false);
  for (int64_t chain = 0; chain < k; ++chain) {
    int64_t base = chain * chain_length;
    for (int64_t i = 0; i + 1 < chain_length; ++i) {
      Status s = g.AddEdge(base + i, base + i + 1);
      FLINKLESS_CHECK(s.ok(), s.ToString());
    }
  }
  return g;
}

}  // namespace flinkless::graph
