#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace flinkless::graph {

Result<Graph> ParseEdgeList(const std::string& text, bool directed,
                            int64_t num_vertices) {
  std::vector<Edge> edges;
  int64_t max_id = -1;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitWhitespace(line);
    if (fields.size() != 2) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'src dst', got '" +
                                     std::string(line) + "'");
    }
    Edge e;
    if (!ParseInt64(fields[0], &e.src) || !ParseInt64(fields[1], &e.dst) ||
        e.src < 0 || e.dst < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad vertex ids in '" +
                                     std::string(line) + "'");
    }
    max_id = std::max({max_id, e.src, e.dst});
    edges.push_back(e);
  }
  int64_t n = num_vertices > 0 ? num_vertices : max_id + 1;
  if (max_id >= n) {
    return Status::OutOfRange("edge references vertex " +
                              std::to_string(max_id) + " but only " +
                              std::to_string(n) + " vertices declared");
  }
  return Graph::FromEdges(n, directed, std::move(edges));
}

Result<Graph> LoadEdgeList(const std::string& path, bool directed,
                           int64_t num_vertices) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseEdgeList(buffer.str(), directed, num_vertices);
}

std::string ToEdgeListText(const Graph& graph) {
  std::string out = "# " + graph.ToString() + "\n";
  for (const Edge& e : graph.edges()) {
    out += std::to_string(e.src) + " " + std::to_string(e.dst) + "\n";
  }
  return out;
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << ToEdgeListText(graph);
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace flinkless::graph
