#include "core/lineage.h"

#include <set>

#include "common/logging.h"

namespace flinkless::core {

using dataflow::NodeId;
using dataflow::OpKind;
using dataflow::PlanNode;

std::string DependencyKindName(DependencyKind kind) {
  return kind == DependencyKind::kNarrow ? "narrow" : "wide";
}

namespace {

DependencyKind Classify(const PlanNode& node, size_t input_index) {
  switch (node.kind) {
    case OpKind::kSource:
      FLINKLESS_CHECK(false, "sources have no inputs");
      return DependencyKind::kNarrow;
    case OpKind::kMap:
    case OpKind::kFlatMap:
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kUnion:
      return DependencyKind::kNarrow;
    case OpKind::kReduceByKey:
    case OpKind::kGroupReduceByKey:
    case OpKind::kJoin:
    case OpKind::kCoGroup:
    case OpKind::kDistinct:
      return DependencyKind::kWide;
    case OpKind::kCross:
      // Left side stays in place; the right side is broadcast everywhere.
      return input_index == 0 ? DependencyKind::kNarrow
                              : DependencyKind::kWide;
  }
  return DependencyKind::kWide;
}

}  // namespace

LineageAnalysis::LineageAnalysis(const dataflow::Plan* plan) : plan_(plan) {
  FLINKLESS_CHECK(plan_ != nullptr, "lineage analysis needs a plan");
  kinds_.resize(plan_->num_nodes());
  for (const PlanNode& node : plan_->nodes()) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      kinds_[node.id].push_back(Classify(node, i));
    }
  }
}

DependencyKind LineageAnalysis::KindOf(NodeId node,
                                       size_t input_index) const {
  FLINKLESS_CHECK(node >= 0 && static_cast<size_t>(node) < kinds_.size() &&
                      input_index < kinds_[node].size(),
                  "no such edge");
  return kinds_[node][input_index];
}

bool LineageAnalysis::AllNarrowUpstream(NodeId node) const {
  std::set<NodeId> visited;
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    NodeId current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    const PlanNode& n = plan_->node(current);
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      if (kinds_[current][i] == DependencyKind::kWide) return false;
      stack.push_back(n.inputs[i]);
    }
  }
  return true;
}

int64_t LineageAnalysis::TasksToRebuild(NodeId node, int partition,
                                        int num_partitions) const {
  FLINKLESS_CHECK(num_partitions > 0 && partition >= 0 &&
                      partition < num_partitions,
                  "bad partition arguments");
  // BFS over (node, partition) task identifiers.
  std::set<std::pair<NodeId, int>> needed;
  std::vector<std::pair<NodeId, int>> stack;
  auto push = [&](NodeId n, int p) {
    if (plan_->node(n).kind == OpKind::kSource) return;  // durable input
    if (needed.emplace(n, p).second) stack.emplace_back(n, p);
  };
  push(node, partition);
  while (!stack.empty()) {
    auto [current, p] = stack.back();
    stack.pop_back();
    const PlanNode& n = plan_->node(current);
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      if (kinds_[current][i] == DependencyKind::kNarrow) {
        push(n.inputs[i], p);
      } else {
        for (int q = 0; q < num_partitions; ++q) push(n.inputs[i], q);
      }
    }
  }
  return static_cast<int64_t>(needed.size());
}

int64_t LineageAnalysis::IterativeRebuildTasks(int64_t tasks_per_superstep,
                                               int iterations) {
  // A wide dependency inside the superstep makes every partition of
  // iteration i depend on all partitions of iteration i-1, transitively
  // back to the start: the whole history is replayed.
  return tasks_per_superstep * iterations;
}

std::string LineageAnalysis::ToString() const {
  std::string out;
  for (const PlanNode& node : plan_->nodes()) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const PlanNode& input = plan_->node(node.inputs[i]);
      out += "  " + node.name + " <- " + input.name + ": " +
             DependencyKindName(kinds_[node.id][i]) + "\n";
    }
  }
  return out;
}

}  // namespace flinkless::core
