// Lineage analysis: why lineage-based recovery (Spark-style, paper §2.2)
// breaks down for iterative dataflows.
//
// Lineage recovery re-computes only the lost partitions by replaying their
// derivation. How much must be replayed depends on the dependency shape:
// through a *narrow* dependency (Map, Filter, ...) partition p derives from
// input partition p alone; through a *wide* dependency (Reduce, Join — any
// shuffle) it derives from ALL input partitions. The paper's observation:
// "a partition of the current iteration may depend on all partitions of the
// previous iteration (e.g. when a reducer is executed during an iteration).
// In such cases after a failure the iteration has to be restarted from
// scratch."
//
// This module classifies a Plan's dependencies and computes the
// recomputation footprint of losing one partition — the quantitative form
// of that argument (experiment C4).

#ifndef FLINKLESS_CORE_LINEAGE_H_
#define FLINKLESS_CORE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/plan.h"

namespace flinkless::core {

/// How an operator's output partition depends on one of its inputs.
enum class DependencyKind {
  /// Output partition p is derived from input partition p only
  /// (partition-local operators: Map, FlatMap, Filter, Project, Union).
  kNarrow,
  /// Output partition p is derived from every input partition (operators
  /// with a shuffle: ReduceByKey, GroupReduce, Join, CoGroup, Distinct, and
  /// the broadcast side of Cross).
  kWide,
};

/// Stable name ("narrow" / "wide").
std::string DependencyKindName(DependencyKind kind);

/// Per-node dependency classification of a plan.
class LineageAnalysis {
 public:
  /// Classifies every edge of `plan`. The plan is borrowed and must outlive
  /// the analysis.
  explicit LineageAnalysis(const dataflow::Plan* plan);

  /// Dependency kind of edge (node <- its input_index-th input).
  DependencyKind KindOf(dataflow::NodeId node, size_t input_index) const;

  /// True when every dependency on the path from `node` up to the sources
  /// is narrow — the case where lineage recovery is cheap.
  bool AllNarrowUpstream(dataflow::NodeId node) const;

  /// Number of (operator, partition) tasks that must be re-executed to
  /// rebuild partition `partition` of `node`, assuming source data is
  /// durable (re-readable for free) and nothing else was materialized.
  /// This is the lineage-recovery cost of losing that partition.
  int64_t TasksToRebuild(dataflow::NodeId node, int partition,
                         int num_partitions) const;

  /// Tasks re-executed by lineage recovery when one partition of the
  /// iteration state is lost after `iterations` supersteps of a step plan
  /// whose state feedback passes through at least one wide dependency: the
  /// whole prefix must be replayed. `tasks_per_superstep` is the full
  /// superstep's task count (operators × partitions).
  static int64_t IterativeRebuildTasks(int64_t tasks_per_superstep,
                                       int iterations);

  /// Human-readable per-edge classification.
  std::string ToString() const;

 private:
  const dataflow::Plan* plan_;
  // kinds_[node][input_index]
  std::vector<std::vector<DependencyKind>> kinds_;
};

}  // namespace flinkless::core

#endif  // FLINKLESS_CORE_LINEAGE_H_
