#include "core/policies.h"

#include <cstdio>
#include <set>

#include "common/hash.h"
#include "common/logging.h"

namespace flinkless::core {

using iteration::IterationContext;
using iteration::IterationState;
using iteration::RecoveryOutcome;

Result<RecoveryOutcome> NoFaultTolerancePolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  (void)state;
  FLOG_WARN("job '" << ctx.job_id << "': " << lost.size()
                    << " partitions lost at iteration " << ctx.iteration
                    << " with no fault tolerance configured");
  return RecoveryOutcome::Abort();
}

Result<RecoveryOutcome> RestartPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  (void)state;
  (void)lost;
  FLOG_INFO("job '" << ctx.job_id << "': restarting from scratch after "
                    << "failure at iteration " << ctx.iteration);
  return RecoveryOutcome::Restart();
}

CheckpointRollbackPolicy::CheckpointRollbackPolicy(int interval,
                                                   bool keep_only_latest,
                                                   bool incremental)
    : interval_(interval),
      keep_only_latest_(keep_only_latest),
      incremental_(incremental) {
  FLINKLESS_CHECK(interval_ >= 1, "checkpoint interval must be >= 1");
}

std::string CheckpointRollbackPolicy::CheckpointKey(const std::string& job_id,
                                                    int iteration,
                                                    int partition) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/ckpt/%08d/%06d", iteration, partition);
  return job_id + buf;
}

Status CheckpointRollbackPolicy::WriteCheckpoint(
    const IterationContext& ctx, const IterationState& state) {
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "rollback recovery requires stable storage in the job environment");
  }
  for (int p = 0; p < state.num_partitions(); ++p) {
    std::vector<uint8_t> blob = state.SerializePartition(p);
    uint64_t hash = HashBytes(blob.data(), blob.size());
    if (incremental_) {
      auto it = content_hash_.find(p);
      if (it != content_hash_.end() && it->second == hash &&
          ctx.storage->Exists(manifest_[p])) {
        // Unchanged since the previous checkpoint: keep referencing the
        // existing blob, write nothing.
        continue;
      }
    }
    std::string key = CheckpointKey(ctx.job_id, ctx.iteration, p);
    FLINKLESS_RETURN_NOT_OK(ctx.storage->Write(key, std::move(blob)));
    manifest_[p] = std::move(key);
    content_hash_[p] = hash;
  }
  if (keep_only_latest_) {
    // Drop every blob of this job that the fresh manifest does not
    // reference (with full snapshots that is exactly "all older
    // checkpoints").
    std::set<std::string> referenced;
    for (const auto& [p, key] : manifest_) referenced.insert(key);
    for (const std::string& key :
         ctx.storage->ListWithPrefix(ctx.job_id + "/ckpt/")) {
      if (referenced.count(key) == 0) ctx.storage->Delete(key);
    }
  }
  last_checkpoint_ = ctx.iteration;
  return Status::OK();
}

Status CheckpointRollbackPolicy::OnJobStart(const IterationContext& ctx,
                                            IterationState* state) {
  // A fresh job run: forget checkpoints of previous runs under this id.
  if (ctx.storage != nullptr) {
    ctx.storage->DeleteWithPrefix(ctx.job_id + "/ckpt/");
  }
  last_checkpoint_ = -1;
  manifest_.clear();
  content_hash_.clear();
  // Checkpoint the initial state so a failure in the first interval has a
  // snapshot to roll back to.
  return WriteCheckpoint(ctx, *state);
}

Status CheckpointRollbackPolicy::AfterIteration(const IterationContext& ctx,
                                                IterationState* state) {
  if (ctx.iteration % interval_ != 0) return Status::OK();
  return WriteCheckpoint(ctx, *state);
}

Result<RecoveryOutcome> CheckpointRollbackPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  (void)lost;
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "rollback recovery requires stable storage in the job environment");
  }
  if (last_checkpoint_ < 0) {
    return Status::DataLoss("no checkpoint available for job '" + ctx.job_id +
                            "'");
  }
  // Synchronous rollback: every partition is restored to the snapshot, not
  // just the lost ones — the surviving partitions' progress since the
  // checkpoint is discarded too.
  for (int p = 0; p < state->num_partitions(); ++p) {
    auto it = manifest_.find(p);
    if (it == manifest_.end()) {
      return Status::DataLoss("no checkpointed blob for partition " +
                              std::to_string(p) + " of job '" + ctx.job_id +
                              "'");
    }
    FLINKLESS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                               ctx.storage->Read(it->second));
    FLINKLESS_RETURN_NOT_OK(state->RestorePartition(p, blob));
  }
  FLOG_INFO("job '" << ctx.job_id << "': rolled back from iteration "
                    << ctx.iteration << " to checkpoint at iteration "
                    << last_checkpoint_);
  return RecoveryOutcome::Rewind(last_checkpoint_);
}

ConfinedRollbackPolicy::ConfinedRollbackPolicy(int interval,
                                               WorksetRefresher refresher)
    : interval_(interval), refresher_(std::move(refresher)) {
  FLINKLESS_CHECK(interval_ >= 1, "checkpoint interval must be >= 1");
}

std::string ConfinedRollbackPolicy::CheckpointKey(const std::string& job_id,
                                                  int partition) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/confined/%06d", partition);
  return job_id + buf;
}

Status ConfinedRollbackPolicy::WriteCheckpoint(
    const IterationContext& ctx, const IterationState& state) {
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "confined rollback requires stable storage in the job environment");
  }
  // No rewinding means only the latest snapshot is ever read; each write
  // overwrites in place.
  for (int p = 0; p < state.num_partitions(); ++p) {
    FLINKLESS_RETURN_NOT_OK(ctx.storage->Write(
        CheckpointKey(ctx.job_id, p), state.SerializePartition(p)));
  }
  have_checkpoint_ = true;
  return Status::OK();
}

Status ConfinedRollbackPolicy::OnJobStart(const IterationContext& ctx,
                                          IterationState* state) {
  if (ctx.storage != nullptr) {
    ctx.storage->DeleteWithPrefix(ctx.job_id + "/confined/");
  }
  have_checkpoint_ = false;
  return WriteCheckpoint(ctx, *state);
}

Status ConfinedRollbackPolicy::AfterIteration(const IterationContext& ctx,
                                              IterationState* state) {
  if (ctx.iteration % interval_ != 0) return Status::OK();
  return WriteCheckpoint(ctx, *state);
}

Result<RecoveryOutcome> ConfinedRollbackPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "confined rollback requires stable storage in the job environment");
  }
  if (!have_checkpoint_) {
    return Status::DataLoss("no checkpoint available for job '" + ctx.job_id +
                            "'");
  }
  // Confined restore: only the lost partitions come back from the (stale)
  // snapshot; the survivors keep their current, newer state.
  for (int p : lost) {
    FLINKLESS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                               ctx.storage->Read(CheckpointKey(ctx.job_id,
                                                               p)));
    FLINKLESS_RETURN_NOT_OK(state->RestorePartition(p, blob));
  }
  if (state->kind() == iteration::StateKind::kDelta) {
    if (!refresher_) {
      return Status::FailedPrecondition(
          "confined rollback on a delta iteration needs a workset "
          "refresher");
    }
    FLINKLESS_RETURN_NOT_OK(refresher_(
        ctx, static_cast<iteration::DeltaState*>(state), lost));
  }
  FLOG_INFO("job '" << ctx.job_id << "': confined restore of "
                    << lost.size() << " partitions at iteration "
                    << ctx.iteration << " (survivors keep their progress)");
  return RecoveryOutcome::Continue();
}

ConfinedLogReplayPolicy::ConfinedLogReplayPolicy(int interval,
                                                 WorksetRefresher refresher)
    : interval_(interval), refresher_(std::move(refresher)) {
  FLINKLESS_CHECK(interval_ >= 1, "checkpoint interval must be >= 1");
}

std::string ConfinedLogReplayPolicy::CheckpointKey(const std::string& job_id,
                                                   int partition) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/clog/%06d", partition);
  return job_id + buf;
}

Status ConfinedLogReplayPolicy::WriteCheckpoint(
    const IterationContext& ctx, const IterationState& state) {
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "confined-log recovery on a delta iteration requires stable "
        "storage in the job environment");
  }
  // Only the latest snapshot is ever read; each write overwrites in place.
  for (int p = 0; p < state.num_partitions(); ++p) {
    FLINKLESS_RETURN_NOT_OK(ctx.storage->Write(
        CheckpointKey(ctx.job_id, p), state.SerializePartition(p)));
  }
  have_checkpoint_ = true;
  return Status::OK();
}

Status ConfinedLogReplayPolicy::OnJobStart(const IterationContext& ctx,
                                           IterationState* state) {
  have_checkpoint_ = false;
  // Bulk iterations recover from the message log alone: the logged
  // channels of the failed superstep determine the lost partitions' next
  // state exactly, so there is nothing to checkpoint and the failure-free
  // overhead is the log itself.
  if (state->kind() != iteration::StateKind::kDelta) return Status::OK();
  if (ctx.storage != nullptr) {
    ctx.storage->DeleteWithPrefix(ctx.job_id + "/clog/");
  }
  return WriteCheckpoint(ctx, *state);
}

Status ConfinedLogReplayPolicy::AfterIteration(const IterationContext& ctx,
                                               IterationState* state) {
  if (state->kind() != iteration::StateKind::kDelta) return Status::OK();
  if (ctx.iteration % interval_ != 0) return Status::OK();
  return WriteCheckpoint(ctx, *state);
}

Result<RecoveryOutcome> ConfinedLogReplayPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  if (!ctx.replay_messages) {
    return Status::FailedPrecondition(
        "confined-log recovery needs the driver's outbound message log: "
        "enable message_log in the iteration config (--msglog on the "
        "demos)");
  }
  if (state->kind() == iteration::StateKind::kDelta) {
    // The solution set accumulates across supersteps; the log only covers
    // the failed one. Restore the lost solution partitions to the latest
    // snapshot first, then let the replayed delta re-apply the failed
    // superstep's updates on top.
    if (ctx.storage == nullptr) {
      return Status::FailedPrecondition(
          "confined-log recovery on a delta iteration requires stable "
          "storage in the job environment");
    }
    if (!have_checkpoint_) {
      return Status::DataLoss("no checkpoint available for job '" +
                              ctx.job_id + "'");
    }
    for (int p : lost) {
      FLINKLESS_ASSIGN_OR_RETURN(
          std::vector<uint8_t> blob,
          ctx.storage->Read(CheckpointKey(ctx.job_id, p)));
      FLINKLESS_RETURN_NOT_OK(state->RestorePartition(p, blob));
    }
  }
  FLINKLESS_RETURN_NOT_OK(ctx.replay_messages(lost));
  if (state->kind() == iteration::StateKind::kDelta) {
    // The restored partitions are still stale between the snapshot and the
    // failed superstep (the replay healed only the failed superstep's
    // delta). Re-seed the workset so the stale region re-propagates and
    // converges out — exactly like confined rollback.
    if (!refresher_) {
      return Status::FailedPrecondition(
          "confined-log recovery on a delta iteration needs a workset "
          "refresher");
    }
    FLINKLESS_RETURN_NOT_OK(refresher_(
        ctx, static_cast<iteration::DeltaState*>(state), lost));
  }
  FLOG_INFO("job '" << ctx.job_id << "': confined-log replay rebuilt "
                    << lost.size() << " partitions at iteration "
                    << ctx.iteration << " (survivors idle, no recompute)");
  return RecoveryOutcome::Continue();
}

namespace {

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

/// Delta-checkpoint blob format v2 ("FLKDCP2\0" little-endian). v1 blobs
/// started directly with the solution length; since real solution blobs are
/// far smaller than this constant, the first u64 disambiguates the formats.
constexpr uint64_t kDeltaBlobMagicV2 = 0x00325043444b4c46ULL;

/// Version metadata framed into a v2 blob (absent from legacy v1 blobs).
struct DeltaBlobVersions {
  /// The partition clock this delta was computed against: the blob holds
  /// exactly the entries with version > since. 0 = full snapshot.
  uint64_t since = 0;
  /// The partition clock at write time. The next chain link's `since` must
  /// equal this, which is what chain-contiguity validation checks.
  uint64_t clock = 0;
  /// False for legacy v1 blobs, which carried no version metadata.
  bool framed = false;
};

/// Frames one partition's checkpoint piece: the partition's version window,
/// the changed solution entries, and the current workset.
std::vector<uint8_t> FrameDeltaBlob(
    uint64_t since_version, uint64_t clock_at_write,
    const std::vector<dataflow::Record>& solution_entries,
    const std::vector<dataflow::Record>& workset_records) {
  std::vector<uint8_t> solution_blob =
      dataflow::SerializeRecords(solution_entries);
  std::vector<uint8_t> workset_blob =
      dataflow::SerializeRecords(workset_records);
  std::vector<uint8_t> out;
  out.reserve(32 + solution_blob.size() + workset_blob.size());
  PutU64(kDeltaBlobMagicV2, &out);
  PutU64(since_version, &out);
  PutU64(clock_at_write, &out);
  PutU64(solution_blob.size(), &out);
  out.insert(out.end(), solution_blob.begin(), solution_blob.end());
  out.insert(out.end(), workset_blob.begin(), workset_blob.end());
  return out;
}

Status UnframeDeltaBlob(const std::vector<uint8_t>& blob,
                        std::vector<dataflow::Record>* solution_entries,
                        std::vector<dataflow::Record>* workset_records,
                        DeltaBlobVersions* versions) {
  size_t offset = 0;
  uint64_t first = 0;
  if (!GetU64(blob, &offset, &first)) {
    return Status::DataLoss("truncated delta-checkpoint blob");
  }
  uint64_t solution_len = 0;
  *versions = DeltaBlobVersions{};
  if (first == kDeltaBlobMagicV2) {
    if (!GetU64(blob, &offset, &versions->since) ||
        !GetU64(blob, &offset, &versions->clock) ||
        !GetU64(blob, &offset, &solution_len)) {
      return Status::DataLoss("truncated delta-checkpoint blob header");
    }
    versions->framed = true;
  } else {
    // Legacy v1: the first u64 is the solution length itself.
    solution_len = first;
  }
  if (offset + solution_len > blob.size()) {
    return Status::DataLoss("truncated delta-checkpoint blob");
  }
  std::vector<uint8_t> solution_blob(blob.begin() + offset,
                                     blob.begin() + offset + solution_len);
  std::vector<uint8_t> workset_blob(blob.begin() + offset + solution_len,
                                    blob.end());
  FLINKLESS_ASSIGN_OR_RETURN(*solution_entries,
                             dataflow::DeserializeRecords(solution_blob));
  FLINKLESS_ASSIGN_OR_RETURN(*workset_records,
                             dataflow::DeserializeRecords(workset_blob));
  return Status::OK();
}

}  // namespace

DeltaCheckpointPolicy::DeltaCheckpointPolicy(int interval, int compact_every)
    : interval_(interval), compact_every_(compact_every) {
  FLINKLESS_CHECK(interval_ >= 1, "checkpoint interval must be >= 1");
  FLINKLESS_CHECK(compact_every_ >= 1, "compact_every must be >= 1");
}

std::string DeltaCheckpointPolicy::BlobKey(const std::string& job_id,
                                           int sequence,
                                           int partition) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/dckpt/%08d/%06d", sequence, partition);
  return job_id + buf;
}

Status DeltaCheckpointPolicy::WriteCheckpoint(
    const IterationContext& ctx, const iteration::DeltaState& state,
    bool full) {
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "delta checkpointing requires stable storage in the job "
        "environment");
  }
  int sequence = next_sequence_++;
  if (static_cast<int>(last_versions_.size()) != state.num_partitions()) {
    last_versions_.assign(state.num_partitions(), 0);
  }
  for (int p = 0; p < state.num_partitions(); ++p) {
    const uint64_t since = full ? 0 : last_versions_[p];
    const uint64_t clock = state.solution().version(p);
    FLINKLESS_RETURN_NOT_OK(ctx.storage->Write(
        BlobKey(ctx.job_id, sequence, p),
        FrameDeltaBlob(since, clock,
                       state.solution().EntriesSince(p, since),
                       state.workset().partition(p))));
    last_versions_[p] = clock;
  }
  if (full) {
    // The old chain is superseded.
    for (int old_sequence : chain_) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "/dckpt/%08d/", old_sequence);
      ctx.storage->DeleteWithPrefix(ctx.job_id + buf);
    }
    chain_.clear();
  }
  chain_.push_back(sequence);
  last_checkpoint_ = ctx.iteration;
  return Status::OK();
}

Status DeltaCheckpointPolicy::OnJobStart(const IterationContext& ctx,
                                         IterationState* state) {
  if (state->kind() != iteration::StateKind::kDelta) {
    return Status::InvalidArgument(
        "delta checkpointing applies to delta iterations only");
  }
  if (ctx.storage != nullptr) {
    ctx.storage->DeleteWithPrefix(ctx.job_id + "/dckpt/");
  }
  last_checkpoint_ = -1;
  last_versions_.clear();
  next_sequence_ = 0;
  chain_.clear();
  return WriteCheckpoint(ctx, *static_cast<iteration::DeltaState*>(state),
                         /*full=*/true);
}

Status DeltaCheckpointPolicy::AfterIteration(const IterationContext& ctx,
                                             IterationState* state) {
  if (ctx.iteration % interval_ != 0) return Status::OK();
  if (state->kind() != iteration::StateKind::kDelta) {
    return Status::InvalidArgument(
        "delta checkpointing applies to delta iterations only");
  }
  bool compact = static_cast<int>(chain_.size()) >= compact_every_;
  return WriteCheckpoint(ctx, *static_cast<iteration::DeltaState*>(state),
                         compact);
}

Result<RecoveryOutcome> DeltaCheckpointPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  (void)lost;
  if (ctx.storage == nullptr) {
    return Status::FailedPrecondition(
        "delta checkpointing requires stable storage in the job "
        "environment");
  }
  if (state->kind() != iteration::StateKind::kDelta) {
    return Status::InvalidArgument(
        "delta checkpointing applies to delta iterations only");
  }
  if (chain_.empty()) {
    return Status::DataLoss("no delta checkpoint available for job '" +
                            ctx.job_id + "'");
  }
  auto* delta = static_cast<iteration::DeltaState*>(state);
  // Replay the chain per partition: base entries first, newer deltas
  // overwrite older ones; the workset comes from the newest checkpoint
  // alone. Each v2 blob records the clock window it was cut from, so a
  // chain whose links do not abut (a lost or reordered delta) is detected
  // instead of silently restoring a hole.
  for (int p = 0; p < delta->num_partitions(); ++p) {
    delta->solution().ClearPartition(p);
    delta->workset().ClearPartition(p);
    uint64_t expected_since = 0;
    bool have_versions = true;
    for (size_t link = 0; link < chain_.size(); ++link) {
      bool newest = link + 1 == chain_.size();
      FLINKLESS_ASSIGN_OR_RETURN(
          std::vector<uint8_t> blob,
          ctx.storage->Read(BlobKey(ctx.job_id, chain_[link], p)));
      std::vector<dataflow::Record> entries;
      std::vector<dataflow::Record> workset_records;
      DeltaBlobVersions versions;
      FLINKLESS_RETURN_NOT_OK(
          UnframeDeltaBlob(blob, &entries, &workset_records, &versions));
      if (versions.framed && have_versions) {
        if (link == 0 && versions.since != 0) {
          return Status::DataLoss(
              "delta-checkpoint chain of job '" + ctx.job_id +
              "' does not start with a full snapshot (base since=" +
              std::to_string(versions.since) + ")");
        }
        if (link > 0 && versions.since != expected_since) {
          return Status::DataLoss(
              "delta-checkpoint chain of job '" + ctx.job_id +
              "' is not contiguous for partition " + std::to_string(p) +
              ": link " + std::to_string(link) + " covers since=" +
              std::to_string(versions.since) + ", previous link ended at " +
              std::to_string(expected_since));
        }
        expected_since = versions.clock;
      } else {
        // A legacy v1 link carries no window; validation stops here.
        have_versions = false;
      }
      for (auto& record : entries) {
        delta->solution().UpsertIntoPartition(p, std::move(record));
      }
      if (newest) delta->workset().partition(p) = std::move(workset_records);
    }
    // Realign the replayed clock with the value recorded when the newest
    // link was cut, so post-recovery deltas chain contiguously with the
    // pre-failure links (a second failure would otherwise trip the
    // contiguity check above).
    if (have_versions && !chain_.empty()) {
      delta->solution().FastForwardClock(p, expected_since);
    }
  }
  // Resync the watermarks to the restored clocks: the replay rebuilt each
  // partition from version 0, and the next incremental delta must capture
  // only post-restore changes — never re-ship what was just restored.
  last_versions_ = delta->solution().VersionVector();
  FLOG_INFO("job '" << ctx.job_id << "': replayed a " << chain_.size()
                    << "-link delta-checkpoint chain back to iteration "
                    << last_checkpoint_);
  return RecoveryOutcome::Rewind(last_checkpoint_);
}

OptimisticRecoveryPolicy::OptimisticRecoveryPolicy(
    CompensationFunction* compensation)
    : compensation_(compensation) {
  FLINKLESS_CHECK(compensation_ != nullptr,
                  "optimistic recovery needs a compensation function");
}

Result<RecoveryOutcome> OptimisticRecoveryPolicy::OnFailure(
    const IterationContext& ctx, IterationState* state,
    const std::vector<int>& lost) {
  // No checkpoint, no lineage: re-initialize the lost partitions through the
  // user-supplied compensation function and keep going from the current
  // iteration. The subsequent iterations of the fixpoint algorithm correct
  // the errors the data loss introduced (paper §2.2).
  FLINKLESS_RETURN_NOT_OK(compensation_->Compensate(ctx, state, lost));
  FLOG_INFO("job '" << ctx.job_id << "': compensated " << lost.size()
                    << " lost partitions at iteration " << ctx.iteration
                    << " with '" << compensation_->name() << "'");
  return RecoveryOutcome::Continue();
}

}  // namespace flinkless::core
