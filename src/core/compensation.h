// CompensationFunction: the user-supplied piece at the heart of optimistic
// recovery (paper §2.2, Schelter et al. CIKM'13).
//
// After a failure destroys some partitions of the iteration state, the
// system does NOT have a checkpoint to restore. Instead it invokes the
// algorithm's compensation function, which must transform the damaged state
// into a *consistent* one — any state from which the fixpoint algorithm
// still converges to the correct solution. For Connected Components that
// means re-initializing lost vertices to their initial labels; for PageRank
// it means redistributing the lost probability mass so ranks sum to one
// again.
//
// The function is invoked with the full state view (all partitions), because
// consistency can be a global property: PageRank's FixRanks must know how
// much mass survived before it can decide what the lost vertices get.

#ifndef FLINKLESS_CORE_COMPENSATION_H_
#define FLINKLESS_CORE_COMPENSATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "iteration/context.h"
#include "iteration/state.h"

namespace flinkless::core {

/// Restores a consistent iteration state after data loss.
class CompensationFunction {
 public:
  virtual ~CompensationFunction() = default;

  /// Display name ("fix-components", "fix-ranks").
  virtual std::string name() const = 0;

  /// Repairs `state` after the partitions in `lost` were cleared (their
  /// workers crashed) and reassigned to fresh workers. On return the state
  /// must be consistent: every partition populated with records the next
  /// superstep can consume, and any global invariant of the algorithm
  /// (e.g. "ranks sum to one") re-established. May touch surviving
  /// partitions too — the paper invokes the compensation on all partitions.
  ///
  /// For delta iterations the function must also repopulate the workset so
  /// the algorithm re-propagates whatever information the lost partitions
  /// need to re-converge (for Connected Components: the restored vertices
  /// and their neighbors propagate their labels again, §3.2).
  virtual Status Compensate(const iteration::IterationContext& ctx,
                            iteration::IterationState* state,
                            const std::vector<int>& lost) = 0;
};

}  // namespace flinkless::core

#endif  // FLINKLESS_CORE_COMPENSATION_H_
