// The fault-tolerance strategies compared throughout the paper:
//
//   * NoFaultTolerance   — fastest failure-free run; any failure kills the
//                          job (the baseline that motivates the work).
//   * RestartPolicy      — re-run the whole job from scratch after a
//                          failure; what lineage-based recovery degenerates
//                          to for iterative jobs with wide dependencies
//                          (paper §2.2).
//   * CheckpointRollback — the classic pessimistic approach: checkpoint the
//                          iteration state to stable storage every k
//                          iterations, restore the latest snapshot on
//                          failure and rewind (paper §2.2, Elnozahy et al.).
//   * OptimisticRecovery — the paper's contribution: no checkpoints at all;
//                          on failure, run the algorithm's compensation
//                          function and continue from the current iteration.

#ifndef FLINKLESS_CORE_POLICIES_H_
#define FLINKLESS_CORE_POLICIES_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/compensation.h"
#include "iteration/policy.h"

namespace flinkless::core {

/// No checkpoints, no recovery: a failure aborts the job with DataLoss.
class NoFaultTolerancePolicy final : public iteration::FaultTolerancePolicy {
 public:
  std::string name() const override { return "none"; }
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;
};

/// No checkpoints; a failure restarts the whole job from its initial state.
class RestartPolicy final : public iteration::FaultTolerancePolicy {
 public:
  std::string name() const override { return "restart"; }
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;
};

/// Pessimistic rollback recovery: synchronous checkpoints of every state
/// partition to stable storage every `interval` iterations (plus iteration
/// 0), full restore + rewind on failure.
///
/// With `incremental` set, a partition whose serialized content did not
/// change since the last checkpoint is not rewritten — its previous blob is
/// kept and referenced by the new checkpoint's manifest. For delta
/// iterations this shrinks checkpoint I/O dramatically once parts of the
/// solution set converge (ablation A4 in DESIGN.md).
class CheckpointRollbackPolicy final
    : public iteration::FaultTolerancePolicy {
 public:
  /// `interval` >= 1: checkpoint after every interval-th iteration. When
  /// `keep_only_latest` is set, blobs no longer referenced by the latest
  /// checkpoint are garbage-collected after it is safely written.
  explicit CheckpointRollbackPolicy(int interval, bool keep_only_latest = true,
                                    bool incremental = false);

  std::string name() const override {
    return std::string("rollback(k=") + std::to_string(interval_) +
           (incremental_ ? ",inc" : "") + ")";
  }

  Status OnJobStart(const iteration::IterationContext& ctx,
                    iteration::IterationState* state) override;
  Status AfterIteration(const iteration::IterationContext& ctx,
                        iteration::IterationState* state) override;
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;

  /// Iteration of the most recent checkpoint (-1 before OnJobStart).
  int last_checkpoint_iteration() const { return last_checkpoint_; }

 private:
  std::string CheckpointKey(const std::string& job_id, int iteration,
                            int partition) const;
  Status WriteCheckpoint(const iteration::IterationContext& ctx,
                         const iteration::IterationState& state);

  int interval_;
  bool keep_only_latest_;
  bool incremental_;
  int last_checkpoint_ = -1;
  /// partition -> blob key holding that partition's state as of the last
  /// checkpoint (for incremental mode the keys can be from different
  /// iterations).
  std::map<int, std::string> manifest_;
  /// partition -> content hash of the blob the manifest references.
  std::map<int, uint64_t> content_hash_;
};

/// Repopulates a delta iteration's workset after lost solution partitions
/// were restored from a (stale) checkpoint, so the affected region
/// re-propagates and re-converges. Mirrors what compensation functions do
/// for the workset; see MakeNeighborhoodRefresher in algos.
using WorksetRefresher = std::function<Status(
    const iteration::IterationContext& ctx, iteration::DeltaState* state,
    const std::vector<int>& lost)>;

/// Confined rollback (in the spirit of CoRAL, Vora et al.): checkpoints
/// like CheckpointRollbackPolicy, but on failure restores ONLY the lost
/// partitions from the snapshot and keeps the survivors' newer state —
/// then continues from the *current* iteration instead of rewinding.
///
/// The mixed state (survivors at iteration i, restored partitions at the
/// checkpoint's iteration k <= i) is not a consistent global snapshot; the
/// job converges anyway for exactly the class of fixpoint algorithms the
/// paper's optimistic recovery targets (self-correcting iterations). So
/// this strategy sits between rollback (pays checkpoints, loses survivors'
/// progress) and optimistic (pays nothing, loses the failed partitions'
/// progress entirely): it pays checkpoints but loses almost no progress.
class ConfinedRollbackPolicy final : public iteration::FaultTolerancePolicy {
 public:
  /// `refresher` is required for delta iterations (bulk iterations need no
  /// workset fix-up) and may be empty otherwise.
  explicit ConfinedRollbackPolicy(int interval,
                                  WorksetRefresher refresher = {});

  std::string name() const override {
    return "confined(k=" + std::to_string(interval_) + ")";
  }

  Status OnJobStart(const iteration::IterationContext& ctx,
                    iteration::IterationState* state) override;
  Status AfterIteration(const iteration::IterationContext& ctx,
                        iteration::IterationState* state) override;
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;

 private:
  std::string CheckpointKey(const std::string& job_id, int partition) const;
  Status WriteCheckpoint(const iteration::IterationContext& ctx,
                         const iteration::IterationState& state);

  int interval_;
  WorksetRefresher refresher_;
  bool have_checkpoint_ = false;
};

/// Confined recovery by outbound-message-log replay (DESIGN.md §14): the
/// drivers log every shuffled loop-variant channel of the current superstep
/// (runtime/message_log.h) and expose IterationContext::replay_messages; on
/// failure this policy replays those logged messages into the lost
/// partitions and continues. The survivors never recompute anything — they
/// only wait while the replay runs — and, unlike ConfinedRollbackPolicy,
/// the rebuilt partitions are byte-identical to what the failed superstep
/// produced, so recovery is *exact*, not merely convergent.
///
/// For bulk iterations the logged messages alone determine the next state,
/// so the policy needs no checkpoints at all: zero failure-free overhead
/// beyond the log itself. A delta iteration's solution set accumulates
/// across supersteps, so the lost solution partitions are first restored
/// from a per-partition snapshot taken every `interval` iterations (like
/// ConfinedRollbackPolicy), then the replayed delta re-applies the failed
/// superstep's updates; the required `refresher` re-seeds the workset so
/// the snapshot-to-now staleness re-propagates and converges out.
class ConfinedLogReplayPolicy final : public iteration::FaultTolerancePolicy {
 public:
  /// `interval` only matters for delta iterations (bulk iterations write no
  /// checkpoints); `refresher` is required for delta iterations.
  explicit ConfinedLogReplayPolicy(int interval = 2,
                                   WorksetRefresher refresher = {});

  std::string name() const override {
    return "confined-log(k=" + std::to_string(interval_) + ")";
  }

  Status OnJobStart(const iteration::IterationContext& ctx,
                    iteration::IterationState* state) override;
  Status AfterIteration(const iteration::IterationContext& ctx,
                        iteration::IterationState* state) override;
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;

 private:
  std::string CheckpointKey(const std::string& job_id, int partition) const;
  Status WriteCheckpoint(const iteration::IterationContext& ctx,
                         const iteration::IterationState& state);

  int interval_;
  WorksetRefresher refresher_;
  bool have_checkpoint_ = false;
};

/// Entry-level incremental checkpointing for delta iterations: each
/// checkpoint writes only the solution-set entries modified since the
/// previous checkpoint (plus the small current workset), forming a chain
/// base + delta + delta + ...; recovery replays the chain. Because
/// solution-set entries stop changing once their region of the graph
/// converges, the written bytes shrink with convergence even under hash
/// partitioning — where partition-granular incremental checkpointing (see
/// CheckpointRollbackPolicy) saves nothing, since every partition holds
/// some still-changing entries. Solution sets must be upsert-only (true
/// for Flink-style delta iterations).
class DeltaCheckpointPolicy final : public iteration::FaultTolerancePolicy {
 public:
  /// Checkpoint after every `interval`-th iteration. After `compact_every`
  /// chained deltas a full snapshot is written and the chain restarts,
  /// bounding recovery replay length.
  explicit DeltaCheckpointPolicy(int interval, int compact_every = 16);

  std::string name() const override {
    return "delta-ckpt(k=" + std::to_string(interval_) + ")";
  }

  Status OnJobStart(const iteration::IterationContext& ctx,
                    iteration::IterationState* state) override;
  Status AfterIteration(const iteration::IterationContext& ctx,
                        iteration::IterationState* state) override;
  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;

  /// Iteration of the most recent checkpoint (-1 before OnJobStart).
  int last_checkpoint_iteration() const { return last_checkpoint_; }

  /// Number of checkpoints in the current chain (1 = base only).
  size_t chain_length() const { return chain_.size(); }

 private:
  std::string BlobKey(const std::string& job_id, int sequence,
                      int partition) const;
  Status WriteCheckpoint(const iteration::IterationContext& ctx,
                         const iteration::DeltaState& state, bool full);

  int interval_;
  int compact_every_;
  int last_checkpoint_ = -1;
  /// Per-partition solution-set clocks as of the last checkpoint — the
  /// `since` watermark each partition's next delta is computed against.
  /// Resynced to the solution set's VersionVector() after a restore, so a
  /// recovery never inflates the next incremental delta.
  std::vector<uint64_t> last_versions_;
  /// Monotonic sequence number used in blob keys (never reused, so a
  /// compaction cannot collide with the chain it replaces).
  int next_sequence_ = 0;
  /// Sequence numbers of the chain's checkpoints, oldest (the base) first.
  std::vector<int> chain_;
};

/// The paper's optimistic recovery: zero failure-free overhead; on failure,
/// invoke the compensation function on the (partially lost) state and
/// continue with the current iteration.
class OptimisticRecoveryPolicy final
    : public iteration::FaultTolerancePolicy {
 public:
  /// `compensation` is borrowed and must outlive the policy.
  explicit OptimisticRecoveryPolicy(CompensationFunction* compensation);

  std::string name() const override {
    return "optimistic(" + compensation_->name() + ")";
  }

  Result<iteration::RecoveryOutcome> OnFailure(
      const iteration::IterationContext& ctx,
      iteration::IterationState* state,
      const std::vector<int>& lost) override;

 private:
  CompensationFunction* compensation_;
};

}  // namespace flinkless::core

#endif  // FLINKLESS_CORE_POLICIES_H_
