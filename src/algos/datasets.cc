#include "algos/datasets.h"

#include "common/logging.h"
#include "dataflow/record.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Record;

int PartitionOfVertex(int64_t vertex, int num_partitions) {
  Record key = MakeRecord(vertex);
  return PartitionedDataset::PartitionOf(key, {0}, num_partitions);
}

std::vector<Record> InitialLabels(const graph::Graph& graph) {
  std::vector<Record> out;
  out.reserve(graph.num_vertices());
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    out.push_back(MakeRecord(v, v));
  }
  return out;
}

PartitionedDataset EdgePairs(const graph::Graph& graph, int num_partitions) {
  std::vector<Record> edges;
  edges.reserve(graph.num_edges() * (graph.directed() ? 1 : 2));
  for (const graph::Edge& e : graph.edges()) {
    edges.push_back(MakeRecord(e.src, e.dst));
    if (!graph.directed() && e.src != e.dst) {
      edges.push_back(MakeRecord(e.dst, e.src));
    }
  }
  return PartitionedDataset::HashPartitioned(std::move(edges), {0},
                                             num_partitions);
}

PartitionedDataset Links(const graph::Graph& graph, int num_partitions) {
  FLINKLESS_CHECK(graph.directed(), "Links expects a directed graph");
  std::vector<Record> links;
  links.reserve(graph.num_edges());
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    const auto& out = graph.Neighbors(v);
    if (out.empty()) continue;
    double prob = 1.0 / static_cast<double>(out.size());
    for (int64_t u : out) {
      links.push_back(MakeRecord(v, u, prob));
    }
  }
  return PartitionedDataset::HashPartitioned(std::move(links), {0},
                                             num_partitions);
}

PartitionedDataset DanglingVertices(const graph::Graph& graph,
                                    int num_partitions) {
  std::vector<Record> dangling;
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    if (graph.Neighbors(v).empty()) dangling.push_back(MakeRecord(v));
  }
  return PartitionedDataset::HashPartitioned(std::move(dangling), {0},
                                             num_partitions);
}

PartitionedDataset InitialRanks(const graph::Graph& graph,
                                int num_partitions) {
  std::vector<Record> ranks;
  ranks.reserve(graph.num_vertices());
  double uniform = 1.0 / static_cast<double>(graph.num_vertices());
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    ranks.push_back(MakeRecord(v, uniform));
  }
  return PartitionedDataset::HashPartitioned(std::move(ranks), {0},
                                             num_partitions);
}

Result<std::vector<int64_t>> ToInt64Vector(const std::vector<Record>& records,
                                           int64_t num_vertices,
                                           int64_t fallback) {
  std::vector<int64_t> out(num_vertices, fallback);
  for (const Record& r : records) {
    if (r.size() < 2) {
      return Status::InvalidArgument("record " + RecordToString(r) +
                                     " has no value column");
    }
    int64_t v = r[0].AsInt64();
    if (v < 0 || v >= num_vertices) {
      return Status::OutOfRange("vertex " + std::to_string(v) +
                                " out of range");
    }
    out[v] = r[1].AsInt64();
  }
  return out;
}

Result<std::vector<double>> ToDoubleVector(const std::vector<Record>& records,
                                           int64_t num_vertices,
                                           double fallback) {
  std::vector<double> out(num_vertices, fallback);
  for (const Record& r : records) {
    if (r.size() < 2) {
      return Status::InvalidArgument("record " + RecordToString(r) +
                                     " has no value column");
    }
    int64_t v = r[0].AsInt64();
    if (v < 0 || v >= num_vertices) {
      return Status::OutOfRange("vertex " + std::to_string(v) +
                                " out of range");
    }
    out[v] = r[1].AsNumeric();
  }
  return out;
}

}  // namespace flinkless::algos
