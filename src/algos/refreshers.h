// Workset refreshers for confined rollback: after the lost solution
// partitions were restored from a stale checkpoint, the restored vertices
// and their neighbors must re-propagate their current values so the
// affected region re-converges — the same workset logic the compensation
// functions use (paper §3.2).

#ifndef FLINKLESS_ALGOS_REFRESHERS_H_
#define FLINKLESS_ALGOS_REFRESHERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/policies.h"
#include "dataflow/dataset.h"
#include "dataflow/record.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Builds a refresher that enqueues every vertex of the lost partitions
/// plus all their graph neighbors, each carrying its current solution-set
/// record. `should_propagate` (optional) filters entries with nothing
/// useful to send — SSSP passes a predicate that skips infinite distances.
/// The graph is borrowed and must outlive the refresher.
core::WorksetRefresher MakeNeighborhoodRefresher(
    const graph::Graph* graph,
    std::function<bool(const dataflow::Record&)> should_propagate = {});

/// Base-data-change → re-run path. When edges or vertex inputs change after
/// a job converged, the fixpoint does not have to be recomputed from scratch:
/// resubmit the dataflow with the previous final solution as the initial
/// solution set and a workset seeded from the changed region only. This
/// builds that seed workset: every vertex in `changed_vertices` plus all of
/// its graph neighbors, each carrying its record from `solution` (keyed by
/// vertex id in column 0). Changed vertices missing from `solution` (newly
/// added base data) are skipped — their record must be appended by the
/// caller, which knows the algorithm's initial value for a fresh vertex.
/// `should_propagate` (optional) filters entries exactly as in
/// MakeNeighborhoodRefresher. The graph passed here must be the *updated*
/// graph, so that new neighbors are re-activated too.
dataflow::PartitionedDataset MakeChangeSeedWorkset(
    const graph::Graph* graph, const std::vector<dataflow::Record>& solution,
    const std::vector<int64_t>& changed_vertices, int num_partitions,
    std::function<bool(const dataflow::Record&)> should_propagate = {});

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_REFRESHERS_H_
