// Workset refreshers for confined rollback: after the lost solution
// partitions were restored from a stale checkpoint, the restored vertices
// and their neighbors must re-propagate their current values so the
// affected region re-converges — the same workset logic the compensation
// functions use (paper §3.2).

#ifndef FLINKLESS_ALGOS_REFRESHERS_H_
#define FLINKLESS_ALGOS_REFRESHERS_H_

#include <functional>

#include "core/policies.h"
#include "dataflow/record.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Builds a refresher that enqueues every vertex of the lost partitions
/// plus all their graph neighbors, each carrying its current solution-set
/// record. `should_propagate` (optional) filters entries with nothing
/// useful to send — SSSP passes a predicate that skips infinite distances.
/// The graph is borrowed and must outlive the refresher.
core::WorksetRefresher MakeNeighborhoodRefresher(
    const graph::Graph* graph,
    std::function<bool(const dataflow::Record&)> should_propagate = {});

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_REFRESHERS_H_
