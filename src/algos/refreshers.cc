#include "algos/refreshers.h"

#include <map>
#include <set>

#include "algos/datasets.h"
#include "common/logging.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::Record;

core::WorksetRefresher MakeNeighborhoodRefresher(
    const graph::Graph* graph,
    std::function<bool(const Record&)> should_propagate) {
  FLINKLESS_CHECK(graph != nullptr, "refresher needs the graph");
  return [graph, should_propagate](
             const iteration::IterationContext& ctx,
             iteration::DeltaState* state,
             const std::vector<int>& lost) -> Status {
    (void)ctx;
    const int num_partitions = state->num_partitions();
    std::set<int> lost_set(lost.begin(), lost.end());

    // The vertices whose solution entries were just replaced by stale
    // checkpointed values, plus their neighbors, must propagate again.
    std::set<int64_t> propagators;
    for (int64_t v = 0; v < graph->num_vertices(); ++v) {
      if (lost_set.count(PartitionOfVertex(v, num_partitions)) == 0) {
        continue;
      }
      propagators.insert(v);
      for (int64_t u : graph->Neighbors(v)) propagators.insert(u);
    }

    std::vector<std::set<int64_t>> queued(num_partitions);
    for (int p = 0; p < num_partitions; ++p) {
      for (const Record& r : state->workset().partition(p)) {
        queued[p].insert(r[0].AsInt64());
      }
    }
    for (int64_t v : propagators) {
      const Record* entry = state->solution().Lookup(MakeRecord(v));
      if (entry == nullptr) {
        return Status::Internal("vertex " + std::to_string(v) +
                                " missing from solution set after confined "
                                "restore");
      }
      if (should_propagate && !should_propagate(*entry)) continue;
      int p = PartitionOfVertex(v, num_partitions);
      if (queued[p].insert(v).second) {
        state->workset().partition(p).push_back(*entry);
      }
    }
    return Status::OK();
  };
}

dataflow::PartitionedDataset MakeChangeSeedWorkset(
    const graph::Graph* graph, const std::vector<Record>& solution,
    const std::vector<int64_t>& changed_vertices, int num_partitions,
    std::function<bool(const Record&)> should_propagate) {
  FLINKLESS_CHECK(graph != nullptr, "seed workset needs the graph");
  FLINKLESS_CHECK(num_partitions > 0, "seed workset needs partitions");

  std::map<int64_t, const Record*> by_vertex;
  for (const Record& r : solution) {
    by_vertex[r[0].AsInt64()] = &r;
  }

  std::set<int64_t> activated;
  for (int64_t v : changed_vertices) {
    activated.insert(v);
    for (int64_t u : graph->Neighbors(v)) activated.insert(u);
  }

  dataflow::PartitionedDataset workset(num_partitions);
  for (int64_t v : activated) {
    auto it = by_vertex.find(v);
    if (it == by_vertex.end()) continue;  // fresh vertex; caller appends it
    if (should_propagate && !should_propagate(*it->second)) continue;
    workset.partition(PartitionOfVertex(v, num_partitions))
        .push_back(*it->second);
  }
  return workset;
}

}  // namespace flinkless::algos
