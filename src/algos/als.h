// Alternating Least Squares matrix factorization as a bulk-iterative
// dataflow — the collaborative-filtering member of the fixpoint-algorithm
// family the optimistic-recovery work targets (Schelter et al.'s line of
// work treats factorization alongside the graph algorithms; the demo
// paper's §1 motivates with "complex machine learning algorithms").
//
// Model: ratings R (user, item, value) ≈ U · Mᵀ with rank-r factor rows.
// Each superstep runs both half-steps of ALS: solve every user row from the
// current item rows, then every item row from the fresh user rows. Both
// halves are regularized least-squares problems per entity, solved with a
// small dense Cholesky factorization.
//
// A failure destroys the factor rows held by the lost partitions. The
// compensation re-initializes the lost rows deterministically (the same
// seeding rule as at job start); the next half-step immediately re-solves
// them against their surviving counterparts, so the loss costs roughly one
// extra superstep — ALS is naturally self-correcting, which is exactly why
// it sits in the optimistically recoverable class.

#ifndef FLINKLESS_ALGOS_ALS_H_
#define FLINKLESS_ALGOS_ALS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/compensation.h"
#include "dataflow/plan.h"
#include "iteration/bulk_iteration.h"

namespace flinkless::algos {

/// One observed rating.
struct Rating {
  int64_t user = 0;
  int64_t item = 0;
  double value = 0;
};

/// A synthetic low-rank rating matrix: draws ground-truth factors with
/// entries in [0,1), keeps each (user, item) cell with probability
/// `density`, and adds N(0, noise) to the observed values. Guarantees at
/// least one rating per user and per item (ALS needs every entity
/// observed).
std::vector<Rating> GenerateRatings(int64_t num_users, int64_t num_items,
                                    int rank, double density, double noise,
                                    Rng* rng);

/// Root-mean-squared reconstruction error of the factorization on
/// `ratings`.
double RatingsRmse(const std::vector<Rating>& ratings,
                   const std::vector<std::vector<double>>& user_factors,
                   const std::vector<std::vector<double>>& item_factors);

/// Deterministic initial factor row for an entity (used for both the
/// initial state and the compensation's re-seeding).
std::vector<double> InitialFactorRow(int64_t entity_id, int rank,
                                     bool is_item);

/// Configuration of an ALS run.
struct AlsOptions {
  int rank = 4;
  double regularization = 0.05;
  int num_partitions = 4;
  /// Executor worker threads (1 = serial, 0 = hardware concurrency).
  int num_threads = 1;
  /// Columnar batch execution for the shuffle/join/reduce hot path
  /// (ExecOptions::use_columnar). Off = record-at-a-time, for A/B runs;
  /// results are byte-identical either way.
  bool columnar_batch = true;
  /// Log every shuffled loop-variant channel of the current superstep to
  /// an outbound message log and expose the confined-log replay hook
  /// (runtime/message_log.h, DESIGN.md §14), enabling
  /// core::ConfinedLogReplayPolicy. Results are byte-identical with the
  /// flag on or off when no failure fires.
  bool message_log = false;
  int max_iterations = 30;
  /// Converged when no factor entry moved more than this between
  /// supersteps.
  double tolerance = 1e-6;
  /// When non-empty, trace the run and write the file here on return
  /// (Chrome trace_event JSON; a ".ndjson" extension selects NDJSON).
  /// Ignored when the JobEnv already carries a tracer.
  std::string trace_path;
  /// When non-empty, collect metrics v2 (per-partition counters,
  /// histograms, gauges -- see runtime/metrics.h) and write the export
  /// here on return (NDJSON; a ".prom" extension selects Prometheus
  /// text). Ignored when the JobEnv already carries a metrics sink.
  std::string metrics_path;
};

/// Compensation for ALS: re-initialize the lost factor rows with the same
/// deterministic seeding used at job start; surviving rows are untouched.
class ReseedFactorsCompensation : public core::CompensationFunction {
 public:
  ReseedFactorsCompensation(int64_t num_users, int64_t num_items, int rank);

  std::string name() const override { return "reseed-factors"; }

  Status Compensate(const iteration::IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override;

 private:
  int64_t num_users_;
  int64_t num_items_;
  int rank_;
};

/// Outcome of an ALS run.
struct AlsResult {
  /// user_factors[u] / item_factors[i] are rank-sized rows.
  std::vector<std::vector<double>> user_factors;
  std::vector<std::vector<double>> item_factors;
  double rmse = 0;
  int iterations = 0;
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
};

/// Runs ALS under the given fault-tolerance policy.
Result<AlsResult> RunAls(const std::vector<Rating>& ratings,
                         int64_t num_users, int64_t num_items,
                         const AlsOptions& options, iteration::JobEnv env,
                         iteration::FaultTolerancePolicy* policy);

/// Sequential reference ALS with the same initialization, half-step order
/// and solver — the dataflow version must match it to numerical noise.
AlsResult ReferenceAls(const std::vector<Rating>& ratings, int64_t num_users,
                       int64_t num_items, const AlsOptions& options);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_ALS_H_
