#include "algos/sssp.h"

#include <set>

#include "algos/datasets.h"
#include "common/logging.h"
#include "dataflow/executor.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

Plan BuildSsspPlan() {
  Plan plan;
  auto workset = plan.Source("workset");
  auto edges = plan.Source("edges");
  auto solution = plan.Source("solution");

  auto relaxed = plan.Join(
      workset, edges, {0}, {0},
      [](const Record& w, const Record& e) {
        return MakeRecord(e[1].AsInt64(), w[1].AsInt64() + 1);
      },
      "relax-neighbors");

  auto candidates = plan.ReduceByKey(
      relaxed, {0},
      [](const Record& a, const Record& b) {
        return a[1].AsInt64() <= b[1].AsInt64() ? a : b;
      },
      "min-distance");

  auto compared = plan.Join(
      candidates, solution, {0}, {0},
      [](const Record& cand, const Record& cur) {
        return MakeRecord(cand[0].AsInt64(), cand[1].AsInt64(),
                          cur[1].AsInt64());
      },
      "distance-update");
  auto improved = plan.Filter(
      compared,
      [](const Record& r) { return r[1].AsInt64() < r[2].AsInt64(); },
      "distance-update-filter");
  auto delta = plan.Project(improved, {0, 1}, "updated-distances");

  plan.Output(delta, "delta");
  plan.Output(delta, "next_workset");
  return plan;
}

FixDistancesCompensation::FixDistancesCompensation(const graph::Graph* graph,
                                                   int64_t source)
    : graph_(graph), source_(source) {
  FLINKLESS_CHECK(graph_ != nullptr, "fix-distances needs the graph");
  FLINKLESS_CHECK(source_ >= 0 && source_ < graph_->num_vertices(),
                  "sssp source out of range");
}

Status FixDistancesCompensation::Compensate(
    const iteration::IterationContext& ctx, iteration::IterationState* state,
    const std::vector<int>& lost) {
  if (state->kind() != iteration::StateKind::kDelta) {
    return Status::InvalidArgument(
        "fix-distances compensates delta iterations only");
  }
  auto* delta = static_cast<iteration::DeltaState*>(state);
  const int num_partitions = delta->num_partitions();
  std::set<int> lost_set(lost.begin(), lost.end());

  // Rebuild the lost partitions in parallel: each ReplacePartition touches
  // only its own partition's map and version clock.
  std::vector<int> lost_list(lost_set.begin(), lost_set.end());
  std::vector<std::vector<int64_t>> restored_of(lost_list.size());
  std::vector<Status> replace_status(lost_list.size());
  runtime::ParallelFor(
      ctx.pool, static_cast<int>(lost_list.size()), [&](int i) {
        const int p = lost_list[i];
        std::vector<Record> records;
        for (int64_t v = 0; v < graph_->num_vertices(); ++v) {
          if (PartitionOfVertex(v, num_partitions) == p) {
            records.push_back(
                MakeRecord(v, v == source_ ? int64_t{0} : kSsspInfinity));
            restored_of[i].push_back(v);
          }
        }
        replace_status[i] =
            delta->solution().ReplacePartition(p, std::move(records));
      });
  for (const Status& s : replace_status) {
    if (!s.ok()) return s;
  }
  std::vector<int64_t> restored;
  for (const auto& part : restored_of) {
    restored.insert(restored.end(), part.begin(), part.end());
  }

  // Restored vertices and their neighbors re-propagate their distances.
  std::set<int64_t> propagators;
  for (int64_t v : restored) {
    propagators.insert(v);
    for (int64_t u : graph_->Neighbors(v)) propagators.insert(u);
  }
  std::vector<std::set<int64_t>> queued(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    for (const Record& r : delta->workset().partition(p)) {
      queued[p].insert(r[0].AsInt64());
    }
  }
  for (int64_t v : propagators) {
    const Record* entry = delta->solution().Lookup(MakeRecord(v));
    if (entry == nullptr) {
      return Status::Internal("vertex " + std::to_string(v) +
                              " missing from solution set after compensation");
    }
    // Vertices still at infinity have nothing useful to propagate.
    if (entry->at(1).AsInt64() >= kSsspInfinity) continue;
    int p = PartitionOfVertex(v, num_partitions);
    if (queued[p].insert(v).second) {
      delta->workset().partition(p).push_back(*entry);
    }
  }
  return Status::OK();
}

Result<SsspResult> RunSssp(const graph::Graph& graph,
                           const SsspOptions& options, iteration::JobEnv env,
                           iteration::FaultTolerancePolicy* policy,
                           const std::vector<int64_t>* true_distances) {
  if (options.source < 0 || options.source >= graph.num_vertices()) {
    return Status::InvalidArgument("sssp source out of range");
  }
  Plan plan = BuildSsspPlan();

  PartitionedDataset edges = EdgePairs(graph, options.num_partitions);
  dataflow::Bindings statics;
  statics["edges"] = &edges;

  std::vector<Record> initial_solution;
  initial_solution.reserve(graph.num_vertices());
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    initial_solution.push_back(
        MakeRecord(v, v == options.source ? int64_t{0} : kSsspInfinity));
  }
  PartitionedDataset initial_workset = PartitionedDataset::HashPartitioned(
      {MakeRecord(options.source, int64_t{0})}, {0}, options.num_partitions);

  iteration::DeltaIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.message_log = options.message_log;
  config.solution_key = {0};
  if (true_distances != nullptr) {
    config.stats_hook = [true_distances](
                            int /*iteration*/,
                            const iteration::SolutionSet& solution,
                            const PartitionedDataset& /*workset*/,
                            runtime::IterationStats* stats) {
      int64_t converged = 0;
      for (int p = 0; p < solution.num_partitions(); ++p) {
        for (const Record& r : solution.PartitionRecords(p)) {
          int64_t v = r[0].AsInt64();
          int64_t dist = r[1].AsInt64();
          int64_t truth = (*true_distances)[v];
          if ((truth < 0 && dist >= kSsspInfinity) || dist == truth) {
            ++converged;
          }
        }
      }
      stats->gauges["converged_vertices"] = static_cast<double>(converged);
    };
  }

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;

  iteration::DeltaIterationDriver driver(&plan, statics, config, exec, env);
  FLINKLESS_ASSIGN_OR_RETURN(
      iteration::DeltaIterationResult run,
      driver.Run(std::move(initial_solution), std::move(initial_workset),
                 policy));

  SsspResult result;
  std::vector<Record> entries;
  for (int p = 0; p < run.final_solution.num_partitions(); ++p) {
    auto part = run.final_solution.PartitionRecords(p);
    entries.insert(entries.end(), part.begin(), part.end());
  }
  FLINKLESS_ASSIGN_OR_RETURN(
      result.distances,
      ToInt64Vector(entries, graph.num_vertices(), kSsspInfinity));
  for (int64_t& d : result.distances) {
    if (d >= kSsspInfinity) d = -1;
  }
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  return result;
}

}  // namespace flinkless::algos
