#include "algos/connected_components.h"

#include <set>
#include <unordered_map>

#include "algos/datasets.h"
#include "common/logging.h"
#include "dataflow/columnar.h"
#include "dataflow/executor.h"
#include "iteration/bulk_iteration.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

Plan BuildConnectedComponentsPlan() {
  Plan plan;
  auto workset = plan.Source("workset");
  auto edges = plan.Source("edges");
  auto solution = plan.Source("solution");

  // Send the (updated) label of each workset vertex to its neighbors. The
  // static edge table is the join's build side so the iteration cache can
  // keep its shuffled form and hash index across supersteps; the shrinking
  // workset probes it.
  auto messages = plan.Join(
      edges, workset, {0}, {0},
      [](const Record& e, const Record& w) {
        return MakeRecord(e[1].AsInt64(), w[1].AsInt64());
      },
      "label-to-neighbors");

  // Minimum candidate label per vertex.
  auto candidates = plan.ReduceByKey(
      messages, {0},
      [](const Record& a, const Record& b) {
        return a[1].AsInt64() <= b[1].AsInt64() ? a : b;
      },
      "candidate-label");
  // The combiner is a min over column 1 keeping the accumulator on ties;
  // declaring it lets the executor fold flat int64 columns (DESIGN.md §15).
  plan.DeclareReduce(candidates, dataflow::ReduceKind::kMinInt64, 1);

  // Compare to the current label; keep only improvements.
  auto compared = plan.Join(
      candidates, solution, {0}, {0},
      [](const Record& cand, const Record& cur) {
        return MakeRecord(cand[0].AsInt64(), cand[1].AsInt64(),
                          cur[1].AsInt64());
      },
      "label-update");
  // Filter + project fused into one FlatMap so the improvement scan crosses
  // the UDF boundary once per partition (batched below) instead of twice
  // per record.
  auto delta = plan.FlatMap(
      compared,
      [](const Record& r, std::vector<Record>* out) {
        if (r[1].AsInt64() < r[2].AsInt64()) {
          out->push_back(MakeRecord(r[0].AsInt64(), r[1].AsInt64()));
        }
      },
      "updated-labels");
  // Batched twin: one pass over three flat int64 columns, appending only
  // the improved (vertex, label) rows — same rows, same order.
  plan.BatchImpl(delta, [](const dataflow::ColumnarBatch& in,
                           dataflow::ColumnarBatch* out) {
    out->Reset({dataflow::ValueType::kInt64, dataflow::ValueType::kInt64});
    const std::vector<int64_t>& vertex = in.Int64Column(0);
    const std::vector<int64_t>& candidate = in.Int64Column(1);
    const std::vector<int64_t>& current = in.Int64Column(2);
    std::vector<int64_t>& out_vertex = out->MutableInt64Column(0);
    std::vector<int64_t>& out_label = out->MutableInt64Column(1);
    for (size_t i = 0; i < in.num_rows(); ++i) {
      if (candidate[i] < current[i]) {
        out_vertex.push_back(vertex[i]);
        out_label.push_back(candidate[i]);
      }
    }
    out->FinishRows(out_vertex.size());
  });

  // The improvements update the solution set and, as the next workset, are
  // forwarded to the neighbors in the next superstep — the feedback edge of
  // Figure 1(a).
  plan.Output(delta, "delta");
  plan.Output(delta, "next_workset");
  return plan;
}

FixComponentsCompensation::FixComponentsCompensation(
    const graph::Graph* graph)
    : graph_(graph) {
  FLINKLESS_CHECK(graph_ != nullptr, "fix-components needs the graph");
}

Status FixComponentsCompensation::Compensate(
    const iteration::IterationContext& ctx, iteration::IterationState* state,
    const std::vector<int>& lost) {
  const int num_partitions = state->num_partitions();
  std::set<int> lost_set(lost.begin(), lost.end());
  std::vector<int> lost_list(lost_set.begin(), lost_set.end());

  // Vertex ids of each lost partition (ascending), computed once; the
  // per-partition repair work below runs on the executor's pool.
  std::vector<std::vector<int64_t>> lost_members(lost_list.size());
  for (int64_t v = 0; v < graph_->num_vertices(); ++v) {
    int p = PartitionOfVertex(v, num_partitions);
    for (size_t i = 0; i < lost_list.size(); ++i) {
      if (lost_list[i] == p) {
        lost_members[i].push_back(v);
        break;
      }
    }
  }

  if (state->kind() == iteration::StateKind::kBulk) {
    // Bulk variant: restore lost vertices to their initial labels; the next
    // superstep recomputes everything anyway.
    auto* bulk = static_cast<iteration::BulkState*>(state);
    runtime::ParallelFor(
        ctx.pool, static_cast<int>(lost_list.size()), [&](int i) {
          std::vector<Record>& partition =
              bulk->data().partition(lost_list[i]);
          partition.clear();
          partition.reserve(lost_members[i].size());
          for (int64_t v : lost_members[i]) {
            partition.push_back(MakeRecord(v, v));
          }
        });
    return Status::OK();
  }

  auto* delta = static_cast<iteration::DeltaState*>(state);

  // 1. Re-initialize the lost solution partitions to the initial labels
  //    (vertex -> its own id). This is the provably consistent state of
  //    Schelter et al. [14]. Each ReplacePartition touches only its own
  //    partition's map and version clock, so the lost partitions rebuild in
  //    parallel on the executor's pool.
  std::vector<Status> replace_status(lost_list.size());
  runtime::ParallelFor(
      ctx.pool, static_cast<int>(lost_list.size()), [&](int i) {
        std::vector<Record> initial_labels;
        initial_labels.reserve(lost_members[i].size());
        for (int64_t v : lost_members[i]) {
          initial_labels.push_back(MakeRecord(v, v));
        }
        replace_status[i] = delta->solution().ReplacePartition(
            lost_list[i], std::move(initial_labels));
      });
  for (const Status& s : replace_status) {
    if (!s.ok()) return s;
  }
  std::vector<int64_t> restored;
  for (size_t i = 0; i < lost_list.size(); ++i) {
    restored.insert(restored.end(), lost_members[i].begin(),
                    lost_members[i].end());
  }

  // 2. Repopulate the workset: the restored vertices and their neighbors
  //    must propagate their (current) labels again so the restored region
  //    re-converges (§3.2). The failure already cleared the lost workset
  //    partitions; we add the recovery records on top of the surviving
  //    ones, deduplicating by vertex.
  std::set<int64_t> propagators;
  for (int64_t v : restored) {
    propagators.insert(v);
    for (int64_t u : graph_->Neighbors(v)) propagators.insert(u);
  }

  // Group the propagators by home partition so each partition can extend
  // its own workset slice independently (solution lookups are read-only).
  std::vector<std::vector<int64_t>> propagators_of(num_partitions);
  for (int64_t v : propagators) {
    propagators_of[PartitionOfVertex(v, num_partitions)].push_back(v);
  }
  std::vector<Status> part_status(num_partitions);
  runtime::ParallelFor(ctx.pool, num_partitions, [&](int p) {
    std::set<int64_t> already_queued;
    for (const Record& r : delta->workset().partition(p)) {
      already_queued.insert(r[0].AsInt64());
    }
    for (int64_t v : propagators_of[p]) {
      const Record* entry = delta->solution().Lookup(MakeRecord(v));
      if (entry == nullptr) {
        part_status[p] = Status::Internal(
            "vertex " + std::to_string(v) +
            " missing from solution set after compensation");
        return;
      }
      if (already_queued.insert(v).second) {
        delta->workset().partition(p).push_back(*entry);
      }
    }
  });
  for (const Status& s : part_status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// Shared stats hook payload: count solution entries matching the
/// precomputed true labels.
void RecordConvergedVertices(const std::vector<int64_t>& true_labels,
                             const std::vector<Record>& entries,
                             runtime::IterationStats* stats) {
  int64_t converged = 0;
  for (const Record& r : entries) {
    int64_t v = r[0].AsInt64();
    if (v >= 0 && v < static_cast<int64_t>(true_labels.size()) &&
        r[1].AsInt64() == true_labels[v]) {
      ++converged;
    }
  }
  stats->gauges["converged_vertices"] = static_cast<double>(converged);
}

}  // namespace

Result<ConnectedComponentsResult> RunConnectedComponents(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels) {
  return RunConnectedComponentsWithSnapshots(graph, options, std::move(env),
                                             policy, true_labels,
                                             CcSnapshotFn());
}

Result<ConnectedComponentsResult> RunConnectedComponentsWithSnapshots(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels, CcSnapshotFn snapshot) {
  Plan plan = BuildConnectedComponentsPlan();

  PartitionedDataset edges = EdgePairs(graph, options.num_partitions);
  std::vector<Record> initial_labels = InitialLabels(graph);
  // "The workset ... initially equals to the labels input."
  PartitionedDataset initial_workset = PartitionedDataset::HashPartitioned(
      initial_labels, {0}, options.num_partitions);

  dataflow::Bindings statics;
  statics["edges"] = &edges;

  iteration::DeltaIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.solution_key = {0};
  config.cache_loop_invariant = options.cache_loop_invariant;
  config.message_log = options.message_log;
  const runtime::FailureSchedule* failures = env.failures;
  const int64_t num_vertices = graph.num_vertices();
  if (true_labels != nullptr || snapshot) {
    config.stats_hook = [true_labels, snapshot, failures, num_vertices](
                            int iteration,
                            const iteration::SolutionSet& solution,
                            const PartitionedDataset& /*workset*/,
                            runtime::IterationStats* stats) {
      std::vector<Record> entries;
      for (int p = 0; p < solution.num_partitions(); ++p) {
        auto part = solution.PartitionRecords(p);
        entries.insert(entries.end(), part.begin(), part.end());
      }
      if (true_labels != nullptr) {
        RecordConvergedVertices(*true_labels, entries, stats);
      }
      if (snapshot) {
        std::vector<int64_t> labels(num_vertices, -1);
        for (const Record& r : entries) {
          int64_t v = r[0].AsInt64();
          if (v >= 0 && v < num_vertices) labels[v] = r[1].AsInt64();
        }
        std::vector<int> lost_partitions;
        if (stats->failure_injected && failures != nullptr) {
          // Several schedule events can target the same iteration and list
          // overlapping partitions; report each lost partition once.
          std::set<int> unique_lost;
          for (const auto& event : failures->events()) {
            if (event.iteration == iteration) {
              unique_lost.insert(event.partitions.begin(),
                                 event.partitions.end());
            }
          }
          lost_partitions.assign(unique_lost.begin(), unique_lost.end());
        }
        snapshot(iteration, labels, lost_partitions,
                 stats->failure_injected,
                 static_cast<int64_t>(stats->messages_shuffled),
                 true_labels != nullptr
                     ? static_cast<int64_t>(
                           stats->Gauge("converged_vertices", -1))
                     : -1);
      }
    };
  }

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.simd_level = options.simd;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;
  exec.memory_budget_bytes = options.memory_budget_bytes;

  iteration::DeltaIterationDriver driver(&plan, statics, config, exec, env);
  FLINKLESS_ASSIGN_OR_RETURN(
      iteration::DeltaIterationResult run,
      driver.Run(std::move(initial_labels), std::move(initial_workset),
                 policy));

  ConnectedComponentsResult result;
  std::vector<Record> entries;
  for (int p = 0; p < run.final_solution.num_partitions(); ++p) {
    auto part = run.final_solution.PartitionRecords(p);
    entries.insert(entries.end(), part.begin(), part.end());
  }
  FLINKLESS_ASSIGN_OR_RETURN(
      result.labels, ToInt64Vector(entries, graph.num_vertices(), -1));
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  return result;
}

Result<ConnectedComponentsResult> RunConnectedComponentsBulk(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels) {
  // Bulk variant: the whole label assignment is the state; each superstep
  // recomputes every vertex's label as min(own, neighbors').
  Plan plan;
  auto state = plan.Source("state");
  auto edges = plan.Source("edges");
  auto messages = plan.Join(
      edges, state, {0}, {0},
      [](const Record& e, const Record& s) {
        return MakeRecord(e[1].AsInt64(), s[1].AsInt64());
      },
      "label-to-neighbors");
  auto with_self = plan.Union(messages, state, "candidates-with-self");
  auto next = plan.ReduceByKey(
      with_self, {0},
      [](const Record& a, const Record& b) {
        return a[1].AsInt64() <= b[1].AsInt64() ? a : b;
      },
      "candidate-label");
  plan.DeclareReduce(next, dataflow::ReduceKind::kMinInt64, 1);
  plan.Output(next, "next_state");

  PartitionedDataset edge_ds = EdgePairs(graph, options.num_partitions);
  dataflow::Bindings statics;
  statics["edges"] = &edge_ds;

  iteration::BulkIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.state_key = {0};
  config.cache_loop_invariant = options.cache_loop_invariant;
  config.message_log = options.message_log;
  // compare-to-previous convergence: stop when no label changed.
  config.convergence = [](const PartitionedDataset& prev,
                          const PartitionedDataset& next, double* metric) {
    std::unordered_map<int64_t, int64_t> old_labels;
    old_labels.reserve(prev.NumRecords());
    for (int p = 0; p < prev.num_partitions(); ++p) {
      for (const Record& r : prev.partition(p)) {
        old_labels[r[0].AsInt64()] = r[1].AsInt64();
      }
    }
    int64_t changed = 0;
    for (int p = 0; p < next.num_partitions(); ++p) {
      for (const Record& r : next.partition(p)) {
        auto it = old_labels.find(r[0].AsInt64());
        if (it == old_labels.end() || it->second != r[1].AsInt64()) ++changed;
      }
    }
    *metric = static_cast<double>(changed);
    return changed == 0;
  };
  if (true_labels != nullptr) {
    config.stats_hook = [true_labels](int /*iteration*/,
                                      const PartitionedDataset& data,
                                      runtime::IterationStats* stats) {
      RecordConvergedVertices(*true_labels, data.Collect(), stats);
    };
  }

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.simd_level = options.simd;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;
  exec.memory_budget_bytes = options.memory_budget_bytes;

  iteration::BulkIterationDriver driver(&plan, statics, config, exec, env);
  PartitionedDataset initial = PartitionedDataset::HashPartitioned(
      InitialLabels(graph), {0}, options.num_partitions);
  FLINKLESS_ASSIGN_OR_RETURN(iteration::BulkIterationResult run,
                             driver.Run(std::move(initial), policy));

  ConnectedComponentsResult result;
  FLINKLESS_ASSIGN_OR_RETURN(
      result.labels,
      ToInt64Vector(run.final_state.Collect(), graph.num_vertices(), -1));
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  return result;
}

}  // namespace flinkless::algos
