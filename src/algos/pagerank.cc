#include "algos/pagerank.h"

#include <cmath>
#include <set>
#include <unordered_map>

#include "algos/datasets.h"
#include "common/logging.h"
#include "dataflow/columnar.h"
#include "dataflow/executor.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

Plan BuildPageRankPlan(int64_t num_vertices, double damping) {
  Plan plan;
  const double n = static_cast<double>(num_vertices);
  const double teleport = (1.0 - damping) / n;

  auto ranks = plan.Source("state");
  auto links = plan.Source("links");
  auto dangling = plan.Source("dangling");
  auto zero_mass = plan.Source("zero_mass");

  // Every vertex propagates a fraction of its rank to its neighbors. The
  // static link table is the join's build side so the iteration cache can
  // keep its shuffled form and hash index across supersteps; the changing
  // ranks probe it.
  auto contributions = plan.Join(
      links, ranks, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[1].AsInt64(),
                          r[1].AsDouble() * l[2].AsDouble());
      },
      "find-neighbors");

  // Vertices with no in-links would vanish from the reduce; a zero
  // contribution per vertex keeps everyone present.
  auto base = plan.Map(
      ranks,
      [](const Record& r) { return MakeRecord(r[0].AsInt64(), 0.0); },
      "base-contribution");
  // Batched twin of the map above (DESIGN.md §15): copy the vertex column,
  // zero-fill the contribution column — row for row what the record fn
  // produces, so the whole rank pipeline runs unboxed.
  plan.BatchImpl(base, [](const dataflow::ColumnarBatch& in,
                          dataflow::ColumnarBatch* out) {
    out->Reset({dataflow::ValueType::kInt64, dataflow::ValueType::kDouble});
    out->MutableInt64Column(0) = in.Int64Column(0);
    out->MutableDoubleColumn(1).assign(in.num_rows(), 0.0);
    out->FinishRows(in.num_rows());
  });
  auto all_contributions =
      plan.Union(contributions, base, "contributions");

  // Re-compute the rank of each vertex from its neighbors' contributions.
  auto sums = plan.ReduceByKey(
      all_contributions, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(),
                          a[1].AsDouble() + b[1].AsDouble());
      },
      "recompute-ranks");
  // The combiner is a sequential double sum over column 1; declaring it
  // lets the executor fold flat columns instead of boxed records (same
  // arrival-order association, so the bytes cannot change).
  plan.DeclareReduce(sums, dataflow::ReduceKind::kSumDouble, 1);

  // Aggregate the rank mass sitting on dangling vertices into one scalar
  // (seeded with 0.0 so the aggregate exists even without dangling
  // vertices)...
  // (static dangling list on the build side, for the same cache reuse)...
  auto dangling_ranks = plan.Join(
      dangling, ranks, {0}, {0},
      [](const Record&, const Record& r) {
        return MakeRecord(int64_t{0}, r[1].AsDouble());
      },
      "dangling-ranks");
  auto dangling_seeded =
      plan.Union(dangling_ranks, zero_mass, "dangling-seeded");
  auto dangling_mass = plan.ReduceByKey(
      dangling_seeded, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(int64_t{0}, a[1].AsDouble() + b[1].AsDouble());
      },
      "dangling-mass");
  plan.DeclareReduce(dangling_mass, dataflow::ReduceKind::kSumDouble, 1);

  // ...and broadcast it to all partitions: rank = teleport + d*contrib +
  // d*dangling/n. Keeps the global invariant sum(rank) == 1.
  auto next = plan.Cross(
      sums, dangling_mass,
      [teleport, damping, n](const Record& s, const Record& m) {
        return MakeRecord(s[0].AsInt64(),
                          teleport + damping * s[1].AsDouble() +
                              damping * m[1].AsDouble() / n);
      },
      "apply-teleport");

  plan.Output(next, "next_state");
  return plan;
}

std::string RankCompensationVariantName(RankCompensationVariant variant) {
  switch (variant) {
    case RankCompensationVariant::kRedistributeLostMass:
      return "redistribute-lost-mass";
    case RankCompensationVariant::kUniformReinit:
      return "uniform-reinit";
    case RankCompensationVariant::kFullReinit:
      return "full-reinit";
  }
  return "?";
}

FixRanksCompensation::FixRanksCompensation(int64_t num_vertices,
                                           RankCompensationVariant variant)
    : num_vertices_(num_vertices), variant_(variant) {
  FLINKLESS_CHECK(num_vertices_ > 0, "fix-ranks needs a non-empty graph");
}

Status FixRanksCompensation::Compensate(
    const iteration::IterationContext& ctx, iteration::IterationState* state,
    const std::vector<int>& lost) {
  if (state->kind() != iteration::StateKind::kBulk) {
    return Status::InvalidArgument(
        "fix-ranks compensates bulk iterations only");
  }
  auto* bulk = static_cast<iteration::BulkState*>(state);
  const int num_partitions = bulk->num_partitions();
  std::set<int> lost_set(lost.begin(), lost.end());
  const double uniform = 1.0 / static_cast<double>(num_vertices_);

  // Vertex ids per partition, computed once; record materialization then
  // runs partition-parallel on the executor's pool (compensation is
  // embarrassingly parallel — each partition repairs only itself).
  std::vector<std::vector<int64_t>> members(num_partitions);
  for (int64_t v = 0; v < num_vertices_; ++v) {
    members[PartitionOfVertex(v, num_partitions)].push_back(v);
  }

  if (variant_ == RankCompensationVariant::kFullReinit) {
    runtime::ParallelFor(ctx.pool, num_partitions, [&](int p) {
      std::vector<Record>& partition = bulk->data().partition(p);
      partition.clear();
      partition.reserve(members[p].size());
      for (int64_t v : members[p]) partition.push_back(MakeRecord(v, uniform));
    });
    return Status::OK();
  }

  // Vertices whose rank was lost (they hash into a lost partition).
  uint64_t num_lost_vertices = 0;
  for (int p : lost_set) num_lost_vertices += members[p].size();
  if (num_lost_vertices == 0) return Status::OK();

  double fill = uniform;
  if (variant_ == RankCompensationVariant::kRedistributeLostMass) {
    // Surviving probability mass; whatever is missing from 1.0 was lost.
    // Each surviving partition sums its own records; the partial sums are
    // folded in partition order so the result does not depend on the
    // thread count.
    std::vector<double> partial(num_partitions, 0.0);
    runtime::ParallelFor(ctx.pool, num_partitions, [&](int p) {
      if (lost_set.count(p) > 0) return;
      double sum = 0.0;
      for (const Record& r : bulk->data().partition(p)) {
        sum += r[1].AsDouble();
      }
      partial[p] = sum;
    });
    double surviving = 0.0;
    for (double s : partial) surviving += s;
    double lost_mass = std::max(0.0, 1.0 - surviving);
    fill = lost_mass / static_cast<double>(num_lost_vertices);
  }

  std::vector<int> lost_list(lost_set.begin(), lost_set.end());
  runtime::ParallelFor(
      ctx.pool, static_cast<int>(lost_list.size()), [&](int i) {
        int p = lost_list[i];
        std::vector<Record>& partition = bulk->data().partition(p);
        partition.clear();
        partition.reserve(members[p].size());
        for (int64_t v : members[p]) partition.push_back(MakeRecord(v, fill));
      });
  return Status::OK();
}

Result<PageRankResult> RunPageRank(const graph::Graph& graph,
                                   const PageRankOptions& options,
                                   iteration::JobEnv env,
                                   iteration::FaultTolerancePolicy* policy,
                                   const std::vector<double>* true_ranks) {
  return RunPageRankWithSnapshots(graph, options, std::move(env), policy,
                                  true_ranks, PrSnapshotFn());
}

Result<PageRankResult> RunPageRankWithSnapshots(
    const graph::Graph& graph, const PageRankOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<double>* true_ranks, PrSnapshotFn snapshot) {
  if (!graph.directed()) {
    return Status::InvalidArgument("PageRank expects a directed graph");
  }
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("PageRank expects a non-empty graph");
  }

  Plan plan = BuildPageRankPlan(graph.num_vertices(), options.damping);

  PartitionedDataset links = Links(graph, options.num_partitions);
  PartitionedDataset dangling =
      DanglingVertices(graph, options.num_partitions);
  PartitionedDataset zero_mass = PartitionedDataset::HashPartitioned(
      {MakeRecord(int64_t{0}, 0.0)}, {0}, options.num_partitions);

  dataflow::Bindings statics;
  statics["links"] = &links;
  statics["dangling"] = &dangling;
  statics["zero_mass"] = &zero_mass;

  iteration::BulkIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.state_key = {0};
  config.cache_loop_invariant = options.cache_loop_invariant;
  config.message_log = options.message_log;
  const double tolerance = options.l1_tolerance;
  // The paper's compare-to-old-rank: L1 norm of the difference between the
  // current estimate and the previous one (bottom-right plot of Figure 4).
  config.convergence = [tolerance](const PartitionedDataset& prev,
                                   const PartitionedDataset& next,
                                   double* metric) {
    std::unordered_map<int64_t, double> old_ranks;
    old_ranks.reserve(prev.NumRecords());
    for (int p = 0; p < prev.num_partitions(); ++p) {
      for (const Record& r : prev.partition(p)) {
        old_ranks[r[0].AsInt64()] = r[1].AsDouble();
      }
    }
    double l1 = 0.0;
    for (int p = 0; p < next.num_partitions(); ++p) {
      for (const Record& r : next.partition(p)) {
        auto it = old_ranks.find(r[0].AsInt64());
        double old_rank = it == old_ranks.end() ? 0.0 : it->second;
        l1 += std::abs(r[1].AsDouble() - old_rank);
      }
    }
    *metric = l1;
    return l1 < tolerance;
  };
  if (true_ranks != nullptr || snapshot) {
    const double eps = options.converged_tolerance;
    const runtime::FailureSchedule* failures = env.failures;
    const int64_t num_vertices = graph.num_vertices();
    config.stats_hook = [true_ranks, eps, snapshot, failures, num_vertices](
                            int iteration, const PartitionedDataset& data,
                            runtime::IterationStats* stats) {
      int64_t converged = 0;
      double mass = 0.0;
      std::vector<double> ranks;
      if (snapshot) ranks.assign(num_vertices, 0.0);
      for (int p = 0; p < data.num_partitions(); ++p) {
        for (const Record& r : data.partition(p)) {
          int64_t v = r[0].AsInt64();
          double rank = r[1].AsDouble();
          mass += rank;
          if (snapshot && v >= 0 && v < num_vertices) ranks[v] = rank;
          if (true_ranks != nullptr &&
              v >= 0 && v < static_cast<int64_t>(true_ranks->size()) &&
              std::abs(rank - (*true_ranks)[v]) <= eps) {
            ++converged;
          }
        }
      }
      if (true_ranks != nullptr) {
        stats->gauges["converged_vertices"] = static_cast<double>(converged);
        stats->gauges["total_mass"] = mass;
      }
      if (snapshot) {
        std::vector<int> lost_partitions;
        if (stats->failure_injected && failures != nullptr) {
          // Several schedule events can target the same iteration and list
          // overlapping partitions; report each lost partition once.
          std::set<int> unique_lost;
          for (const auto& event : failures->events()) {
            if (event.iteration == iteration) {
              unique_lost.insert(event.partitions.begin(),
                                 event.partitions.end());
            }
          }
          lost_partitions.assign(unique_lost.begin(), unique_lost.end());
        }
        snapshot(iteration, ranks, lost_partitions, stats->failure_injected,
                 stats->Gauge("convergence_metric", 0.0),
                 true_ranks != nullptr ? converged : -1);
      }
    };
  }

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.simd_level = options.simd;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;
  exec.memory_budget_bytes = options.memory_budget_bytes;

  iteration::BulkIterationDriver driver(&plan, statics, config, exec, env);
  FLINKLESS_ASSIGN_OR_RETURN(
      iteration::BulkIterationResult run,
      driver.Run(InitialRanks(graph, options.num_partitions), policy));

  PageRankResult result;
  FLINKLESS_ASSIGN_OR_RETURN(
      result.ranks,
      ToDoubleVector(run.final_state.Collect(), graph.num_vertices(), 0.0));
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  if (env.metrics != nullptr && !env.metrics->iterations().empty()) {
    result.final_l1 =
        env.metrics->iterations().back().Gauge("convergence_metric", 0.0);
  }
  return result;
}

}  // namespace flinkless::algos
