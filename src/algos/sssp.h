// Single-source shortest paths (unit weights) as a delta-iterative
// dataflow. SSSP belongs to the same class of fixpoint algorithms over an
// idempotent minimum aggregation as Connected Components (Schelter et al.
// CIKM'13 "path problems"), so the same compensation idea applies:
// re-initialize lost vertices to their initial distances (infinity; 0 for
// the source) and let the neighbors re-propagate.

#ifndef FLINKLESS_ALGOS_SSSP_H_
#define FLINKLESS_ALGOS_SSSP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/compensation.h"
#include "dataflow/plan.h"
#include "iteration/delta_iteration.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Distance value standing in for "unreached" inside the dataflow.
inline constexpr int64_t kSsspInfinity = int64_t{1} << 50;

/// Builds the SSSP step plan. Sources: "workset" (vertex, dist) improved
/// vertices, "solution" (vertex, dist), "edges" (src, dst). Outputs:
/// "delta", "next_workset".
dataflow::Plan BuildSsspPlan();

/// Compensation for SSSP: lost vertices return to infinity (the source to
/// 0), and the restored vertices plus their neighbors re-propagate.
class FixDistancesCompensation : public core::CompensationFunction {
 public:
  FixDistancesCompensation(const graph::Graph* graph, int64_t source);

  std::string name() const override { return "fix-distances"; }

  Status Compensate(const iteration::IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override;

 private:
  const graph::Graph* graph_;
  int64_t source_;
};

/// Configuration of an SSSP run.
struct SsspOptions {
  int64_t source = 0;
  int num_partitions = 4;
  /// Executor worker threads (1 = serial, 0 = hardware concurrency).
  int num_threads = 1;
  /// Columnar batch execution for the shuffle/join/reduce hot path
  /// (ExecOptions::use_columnar). Off = record-at-a-time, for A/B runs;
  /// results are byte-identical either way.
  bool columnar_batch = true;
  /// Log every shuffled loop-variant channel of the current superstep to
  /// an outbound message log and expose the confined-log replay hook
  /// (runtime/message_log.h, DESIGN.md §14), enabling
  /// core::ConfinedLogReplayPolicy. Results are byte-identical with the
  /// flag on or off when no failure fires.
  bool message_log = false;
  int max_iterations = 1000;
  /// When non-empty, trace the run and write the file here on return
  /// (Chrome trace_event JSON; a ".ndjson" extension selects NDJSON).
  /// Ignored when the JobEnv already carries a tracer.
  std::string trace_path;
  /// When non-empty, collect metrics v2 (per-partition counters,
  /// histograms, gauges -- see runtime/metrics.h) and write the export
  /// here on return (NDJSON; a ".prom" extension selects Prometheus
  /// text). Ignored when the JobEnv already carries a metrics sink.
  std::string metrics_path;
};

/// Outcome of an SSSP run.
struct SsspResult {
  /// Per-vertex hop distance from the source; -1 when unreachable.
  std::vector<int64_t> distances;
  int iterations = 0;
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
};

/// Runs SSSP under the given fault-tolerance policy. `true_distances`
/// (optional, from graph::ReferenceSssp) enables the "converged_vertices"
/// gauge.
Result<SsspResult> RunSssp(const graph::Graph& graph,
                           const SsspOptions& options, iteration::JobEnv env,
                           iteration::FaultTolerancePolicy* policy,
                           const std::vector<int64_t>* true_distances =
                               nullptr);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_SSSP_H_
