// Conversions between graphs and the datasets the dataflow programs consume
// (the paper's "labels", "graph", "ranks", "links" inputs), plus extraction
// of algorithm results back out of datasets.

#ifndef FLINKLESS_ALGOS_DATASETS_H_
#define FLINKLESS_ALGOS_DATASETS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataflow/dataset.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Partition a single vertex id would be hashed to (all algorithm state is
/// keyed by vertex in column 0).
int PartitionOfVertex(int64_t vertex, int num_partitions);

/// (vertex, vertex): the initial Connected Components labels — every vertex
/// starts out as its own component.
std::vector<dataflow::Record> InitialLabels(const graph::Graph& graph);

/// Edge pairs (src, dst) hash-partitioned by src; undirected graphs emit
/// both orientations so a join on src reaches every neighbor.
dataflow::PartitionedDataset EdgePairs(const graph::Graph& graph,
                                       int num_partitions);

/// PageRank links (src, dst, transition_probability) with prob =
/// 1/out_degree(src), hash-partitioned by src. Directed graphs only.
dataflow::PartitionedDataset Links(const graph::Graph& graph,
                                   int num_partitions);

/// (vertex) records for every dangling vertex (no out-edges).
dataflow::PartitionedDataset DanglingVertices(const graph::Graph& graph,
                                              int num_partitions);

/// The uniform initial rank vector (vertex, 1/n), hash-partitioned by
/// vertex.
dataflow::PartitionedDataset InitialRanks(const graph::Graph& graph,
                                          int num_partitions);

/// Reads a per-vertex int64 column-1 value out of records (vertex, value).
/// Vertices absent from the dataset get `fallback`. Fails on out-of-range
/// vertex ids.
Result<std::vector<int64_t>> ToInt64Vector(
    const std::vector<dataflow::Record>& records, int64_t num_vertices,
    int64_t fallback);

/// Same for a double column-1 value.
Result<std::vector<double>> ToDoubleVector(
    const std::vector<dataflow::Record>& records, int64_t num_vertices,
    double fallback);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_DATASETS_H_
