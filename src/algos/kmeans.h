// K-Means clustering as a bulk-iterative dataflow — a representative of the
// machine-learning end of the fixpoint-algorithm class the optimistic
// recovery work targets (Schelter et al. CIKM'13 cover ML algorithms next
// to the graph algorithms this demo shows; the demo paper's §1 motivates
// the mechanism with "complex machine learning algorithms").
//
// The iteration state is the centroid set; the (static) input is the point
// cloud. Lloyd's step: assign every point to its nearest centroid, then
// recompute each centroid as the mean of its points. A failure loses the
// centroids held by the failed partitions; the compensation re-seeds the
// lost centroids deterministically from the input points and the iteration
// re-converges (possibly to a different local optimum — the tests check
// clustering cost, not centroid identity).

#ifndef FLINKLESS_ALGOS_KMEANS_H_
#define FLINKLESS_ALGOS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/compensation.h"
#include "dataflow/plan.h"
#include "iteration/bulk_iteration.h"

namespace flinkless::algos {

/// A 2-D point.
struct Point {
  double x = 0;
  double y = 0;
};

/// `k` Gaussian blobs of `points_per_blob` points each, centers spread on a
/// circle of the given radius. The classic synthetic clustering workload.
std::vector<Point> GenerateBlobs(int k, int points_per_blob,
                                 double center_radius, double stddev,
                                 Rng* rng);

/// Sequential Lloyd's algorithm from the given initial centroids (ground
/// truth / baseline). Runs until centroid movement < tolerance or
/// max_iterations.
std::vector<Point> ReferenceKMeans(const std::vector<Point>& points,
                                   std::vector<Point> centroids,
                                   int max_iterations, double tolerance);

/// Sum of squared distances from each point to its nearest centroid (the
/// k-means objective; lower is better).
double ClusteringCost(const std::vector<Point>& points,
                      const std::vector<Point>& centroids);

/// Deterministic initial centroids: the first k distinct points.
std::vector<Point> InitialCentroids(const std::vector<Point>& points, int k);

/// Builds the Lloyd-step plan. Sources: "state" (centroid_id, x, y) and
/// "points" (point_id, x, y). Output: "next_state". Assignment uses a
/// Cross (every point sees every centroid — k is small), the recompute uses
/// a ReduceByKey per centroid.
dataflow::Plan BuildKMeansPlan();

/// Compensation for K-Means: re-seed each lost centroid from the input
/// points, deterministically (seeded by centroid id), so the iteration can
/// continue. Surviving centroids are untouched.
class ReseedCentroidsCompensation : public core::CompensationFunction {
 public:
  /// `points` is borrowed and must outlive the compensation.
  ReseedCentroidsCompensation(const std::vector<Point>* points,
                              int num_centroids);

  std::string name() const override { return "reseed-centroids"; }

  Status Compensate(const iteration::IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override;

 private:
  const std::vector<Point>* points_;
  int num_centroids_;
};

/// Configuration of a K-Means run.
struct KMeansOptions {
  int k = 4;
  int num_partitions = 4;
  /// Executor worker threads (1 = serial, 0 = hardware concurrency).
  int num_threads = 1;
  /// Columnar batch execution for the shuffle/join/reduce hot path
  /// (ExecOptions::use_columnar). Off = record-at-a-time, for A/B runs;
  /// results are byte-identical either way.
  bool columnar_batch = true;
  /// Log every shuffled loop-variant channel of the current superstep to
  /// an outbound message log and expose the confined-log replay hook
  /// (runtime/message_log.h, DESIGN.md §14), enabling
  /// core::ConfinedLogReplayPolicy. Results are byte-identical with the
  /// flag on or off when no failure fires.
  bool message_log = false;
  int max_iterations = 100;
  /// Converged when no centroid moved more than this between iterations.
  double tolerance = 1e-9;
  /// When non-empty, trace the run and write the file here on return
  /// (Chrome trace_event JSON; a ".ndjson" extension selects NDJSON).
  /// Ignored when the JobEnv already carries a tracer.
  std::string trace_path;
  /// When non-empty, collect metrics v2 (per-partition counters,
  /// histograms, gauges -- see runtime/metrics.h) and write the export
  /// here on return (NDJSON; a ".prom" extension selects Prometheus
  /// text). Ignored when the JobEnv already carries a metrics sink.
  std::string metrics_path;
};

/// Outcome of a K-Means run.
struct KMeansResult {
  std::vector<Point> centroids;
  double cost = 0;  // final clustering objective
  int iterations = 0;
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
};

/// Runs K-Means under the given fault-tolerance policy, starting from
/// InitialCentroids(points, k).
Result<KMeansResult> RunKMeans(const std::vector<Point>& points,
                               const KMeansOptions& options,
                               iteration::JobEnv env,
                               iteration::FaultTolerancePolicy* policy);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_KMEANS_H_
