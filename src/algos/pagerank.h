// PageRank as a bulk-iterative dataflow (paper §2.2.2, Figure 1b), plus the
// FixRanks compensation function: uniformly redistribute the lost
// probability mass over the lost vertices so that all ranks still sum to
// one — the consistency condition under which the algorithm provably
// converges to the correct ranking after a failure.

#ifndef FLINKLESS_ALGOS_PAGERANK_H_
#define FLINKLESS_ALGOS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/compensation.h"
#include "dataflow/plan.h"
#include "dataflow/simd.h"
#include "iteration/bulk_iteration.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Configuration of a PageRank run.
struct PageRankOptions {
  int num_partitions = 4;
  /// Executor worker threads (1 = serial, 0 = hardware concurrency).
  int num_threads = 1;
  /// Columnar batch execution for the shuffle/join/reduce hot path
  /// (ExecOptions::use_columnar). Off = record-at-a-time, for A/B runs;
  /// results are byte-identical either way.
  bool columnar_batch = true;
  /// SIMD tier for the columnar kernels (ExecOptions::simd_level,
  /// DESIGN.md §15). kAuto keeps the current process-wide dispatch; every
  /// tier is byte-identical — a wall-clock knob only.
  dataflow::simd::SimdLevel simd = dataflow::simd::SimdLevel::kAuto;
  int max_iterations = 100;
  /// Damping factor d: next = (1-d)/n + d * (contributions + dangling/n).
  double damping = 0.85;
  /// Stop when the L1 difference of consecutive rank vectors drops below
  /// this (the paper's compare-to-old-rank check).
  double l1_tolerance = 1e-9;
  /// A vertex counts as "converged to its true rank" (the demo's
  /// bottom-left plot) when |rank - true_rank| <= converged_tolerance.
  double converged_tolerance = 1e-7;
  /// When non-empty, trace the run and write the file here on return
  /// (Chrome trace_event JSON; a ".ndjson" extension selects NDJSON).
  /// Ignored when the JobEnv already carries a tracer.
  std::string trace_path;
  /// When non-empty, collect metrics v2 (per-partition counters,
  /// histograms, gauges -- see runtime/metrics.h) and write the export
  /// here on return (NDJSON; a ".prom" extension selects Prometheus
  /// text). Ignored when the JobEnv already carries a metrics sink.
  std::string metrics_path;
  /// Reuse shuffled static inputs (links, dangling) and the find-neighbors
  /// build-side hash index across supersteps. Results are byte-identical
  /// either way (DESIGN.md §10).
  bool cache_loop_invariant = true;
  /// Log every shuffled loop-variant channel of the current superstep to
  /// an outbound message log and expose the confined-log replay hook
  /// (runtime/message_log.h, DESIGN.md §14), enabling
  /// core::ConfinedLogReplayPolicy. Results are byte-identical with the
  /// flag on or off when no failure fires.
  bool message_log = false;
  /// Byte budget for the cached artifacts (0 = unlimited): cold entries
  /// spill to the job's StableStorage and reload on access, trading
  /// simulated I/O for residency. Results are byte-identical at any
  /// budget (DESIGN.md §11).
  uint64_t memory_budget_bytes = 0;
};

/// Builds the Figure 1(b) step plan. Sources: "state" (vertex, rank),
/// "links" (src, dst, transition_probability), "dangling" (vertex) and
/// "zero_mass" (a single (0, 0.0) seed so the dangling aggregate exists
/// even without dangling vertices). Output: "next_state".
///
/// Operators, as in the paper: find-neighbors (Join), recompute-ranks
/// (Reduce); compare-to-old-rank is realized by the driver's convergence
/// hook, which sees both the previous and the next rank vector. The
/// dangling mass is aggregated and broadcast with a Cross (a Flink
/// primitive, §2.1).
dataflow::Plan BuildPageRankPlan(int64_t num_vertices, double damping);

/// How FixRanks re-initializes lost rank partitions (ablation A2 compares
/// these).
enum class RankCompensationVariant {
  /// The paper's compensation: spread the lost probability mass uniformly
  /// over the lost vertices — ranks sum to one again.
  kRedistributeLostMass,
  /// Naive: give every lost vertex 1/n; the global mass invariant breaks
  /// (the damped iteration still converges, but from a worse state).
  kUniformReinit,
  /// Drastic: reset *all* vertices to 1/n — loses all progress.
  kFullReinit,
};

/// Stable display name of a variant.
std::string RankCompensationVariantName(RankCompensationVariant variant);

/// FixRanks (the brown box of Figure 1b).
class FixRanksCompensation : public core::CompensationFunction {
 public:
  FixRanksCompensation(int64_t num_vertices,
                       RankCompensationVariant variant =
                           RankCompensationVariant::kRedistributeLostMass);

  std::string name() const override {
    return "fix-ranks/" + RankCompensationVariantName(variant_);
  }

  Status Compensate(const iteration::IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override;

 private:
  int64_t num_vertices_;
  RankCompensationVariant variant_;
};

/// Outcome of a PageRank run.
struct PageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
  /// L1 difference of the last two iterates (final convergence metric).
  double final_l1 = 0.0;
};

/// Runs PageRank over the directed `graph` under the given fault-tolerance
/// policy. When `true_ranks` is supplied, every iteration records the gauge
/// "converged_vertices"; the gauge "convergence_metric" always holds the
/// per-iteration L1 difference (the paper's bottom-right plot).
Result<PageRankResult> RunPageRank(
    const graph::Graph& graph, const PageRankOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<double>* true_ranks = nullptr);

/// Per-iteration snapshot callback for the demo drivers: full rank vector,
/// the partitions lost this iteration, whether a failure was injected, the
/// L1 difference vs the previous iterate, and the converged-vertex count
/// (-1 without ground truth).
using PrSnapshotFn = std::function<void(
    int iteration, const std::vector<double>& ranks,
    const std::vector<int>& lost_partitions, bool failure, double l1_diff,
    int64_t converged_vertices)>;

/// RunPageRank plus a per-iteration snapshot callback.
Result<PageRankResult> RunPageRankWithSnapshots(
    const graph::Graph& graph, const PageRankOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<double>* true_ranks, PrSnapshotFn snapshot);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_PAGERANK_H_
