// Connected Components as a delta-iterative dataflow (paper §2.2.1,
// Figure 1a): the diffusion algorithm that propagates the minimum label of
// each component through the graph (Kang et al., PEGASUS), plus the
// FixComponents compensation function that makes it optimistically
// recoverable.

#ifndef FLINKLESS_ALGOS_CONNECTED_COMPONENTS_H_
#define FLINKLESS_ALGOS_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/compensation.h"
#include "dataflow/plan.h"
#include "dataflow/simd.h"
#include "iteration/delta_iteration.h"
#include "graph/graph.h"

namespace flinkless::algos {

/// Builds the Figure 1(a) step plan. Sources: "workset" (vertex, label)
/// updates propagating this superstep, "solution" (vertex, label) current
/// labels, "edges" (src, dst). Outputs: "delta" and "next_workset" — the
/// label improvements (the delta iteration forwards them both into the
/// solution set and to the neighbors, closing the loop of the figure).
///
/// Operators, as in the paper: label-to-neighbors (Join),
/// candidate-label (Reduce), label-update (Join).
dataflow::Plan BuildConnectedComponentsPlan();

/// FixComponents (the brown box of Figure 1a): re-initializes every lost
/// vertex to its initial label — which is provably consistent for the
/// min-label diffusion — and repopulates the workset so the restored
/// vertices *and their neighbors* propagate their labels again (§3.2).
class FixComponentsCompensation : public core::CompensationFunction {
 public:
  /// `graph` is borrowed; it provides the vertex set, the partition mapping
  /// of lost vertices, and the neighborhood needed for the recovery
  /// workset.
  explicit FixComponentsCompensation(const graph::Graph* graph);

  std::string name() const override { return "fix-components"; }

  Status Compensate(const iteration::IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override;

 private:
  const graph::Graph* graph_;
};

/// Configuration of a Connected Components run.
struct ConnectedComponentsOptions {
  int num_partitions = 4;
  /// Executor worker threads (1 = serial, 0 = hardware concurrency).
  int num_threads = 1;
  /// Columnar batch execution for the shuffle/join/reduce hot path
  /// (ExecOptions::use_columnar). Off = record-at-a-time, for A/B runs;
  /// results are byte-identical either way.
  bool columnar_batch = true;
  /// SIMD tier for the columnar kernels (ExecOptions::simd_level,
  /// DESIGN.md §15). kAuto keeps the current process-wide dispatch; every
  /// tier is byte-identical — a wall-clock knob only.
  dataflow::simd::SimdLevel simd = dataflow::simd::SimdLevel::kAuto;
  int max_iterations = 200;
  /// When non-empty, trace the run and write the file here on return
  /// (Chrome trace_event JSON; a ".ndjson" extension selects NDJSON).
  /// Ignored when the JobEnv already carries a tracer.
  std::string trace_path;
  /// When non-empty, collect metrics v2 (per-partition counters,
  /// histograms, gauges -- see runtime/metrics.h) and write the export
  /// here on return (NDJSON; a ".prom" extension selects Prometheus
  /// text). Ignored when the JobEnv already carries a metrics sink.
  std::string metrics_path;
  /// Reuse the shuffled edge table and the label-to-neighbors build-side
  /// hash index across supersteps. Results are byte-identical either way
  /// (DESIGN.md §10).
  bool cache_loop_invariant = true;
  /// Log every shuffled loop-variant channel of the current superstep to
  /// an outbound message log and expose the confined-log replay hook
  /// (runtime/message_log.h, DESIGN.md §14), enabling
  /// core::ConfinedLogReplayPolicy. Results are byte-identical with the
  /// flag on or off when no failure fires.
  bool message_log = false;
  /// Byte budget for the cached artifacts (0 = unlimited): cold entries
  /// spill to the job's StableStorage and reload on access, trading
  /// simulated I/O for residency. Results are byte-identical at any
  /// budget (DESIGN.md §11).
  uint64_t memory_budget_bytes = 0;
};

/// Outcome of a Connected Components run.
struct ConnectedComponentsResult {
  /// Per-vertex component label (the minimum vertex id of the component).
  std::vector<int64_t> labels;
  int iterations = 0;
  int supersteps_executed = 0;
  bool converged = false;
  int failures_recovered = 0;
};

/// Runs Connected Components over `graph` under the given fault-tolerance
/// policy. When `true_labels` is supplied (precomputed ground truth, as the
/// demo does), every iteration records the gauge "converged_vertices" — the
/// paper's bottom-left plot.
Result<ConnectedComponentsResult> RunConnectedComponents(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels = nullptr);

/// Per-iteration snapshot callback for the demo drivers: full label vector,
/// the partitions lost this iteration (empty when failure-free), whether a
/// failure was injected, the messages shuffled, and the converged-vertex
/// count (-1 without ground truth).
using CcSnapshotFn = std::function<void(
    int iteration, const std::vector<int64_t>& labels,
    const std::vector<int>& lost_partitions, bool failure, int64_t messages,
    int64_t converged_vertices)>;

/// RunConnectedComponents plus a per-iteration snapshot callback (the
/// terminal demo records its visual frames through this).
Result<ConnectedComponentsResult> RunConnectedComponentsWithSnapshots(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels, CcSnapshotFn snapshot);

/// The bulk-iteration variant of Connected Components (ablation A1 in
/// DESIGN.md): recomputes every label every superstep instead of tracking a
/// workset. Converges to the same labels but processes far more records.
Result<ConnectedComponentsResult> RunConnectedComponentsBulk(
    const graph::Graph& graph, const ConnectedComponentsOptions& options,
    iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
    const std::vector<int64_t>* true_labels = nullptr);

}  // namespace flinkless::algos

#endif  // FLINKLESS_ALGOS_CONNECTED_COMPONENTS_H_
