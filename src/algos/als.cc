#include "algos/als.h"

#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "algos/datasets.h"
#include "common/hash.h"
#include "common/logging.h"
#include "dataflow/executor.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

namespace {

constexpr int64_t kUserKind = 0;
constexpr int64_t kItemKind = 1;

/// Solves A x = b for a symmetric positive-definite r x r matrix A
/// (row-major) via Cholesky decomposition. Returns false when A is not
/// positive definite (cannot happen with regularization > 0, but checked).
bool SolveSpd(std::vector<double> a, std::vector<double> b,
              std::vector<double>* x) {
  const size_t r = b.size();
  // In-place Cholesky: A = L Lᵀ, L stored in the lower triangle.
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * r + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * r + k] * a[j * r + k];
      if (i == j) {
        if (sum <= 0) return false;
        a[i * r + i] = std::sqrt(sum);
      } else {
        a[i * r + j] = sum / a[j * r + j];
      }
    }
  }
  // Forward substitution: L y = b.
  for (size_t i = 0; i < r; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i * r + k] * b[k];
    b[i] = sum / a[i * r + i];
  }
  // Back substitution: Lᵀ x = y.
  x->assign(r, 0.0);
  for (size_t i = r; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < r; ++k) sum -= a[k * r + i] * (*x)[k];
    (*x)[i] = sum / a[i * r + i];
  }
  return true;
}

/// The regularized least-squares solve shared by both half-steps: given
/// the counterpart rows and observed values of one entity, produce its new
/// factor row. Rows arrive as (entity, value, f_0..f_{r-1}) records.
Record SolveEntity(int64_t kind, const Record& key,
                   const std::vector<Record>& observations, int rank,
                   double regularization) {
  std::vector<double> a(static_cast<size_t>(rank) * rank, 0.0);
  std::vector<double> b(rank, 0.0);
  for (const Record& obs : observations) {
    double value = obs[1].AsDouble();
    for (int i = 0; i < rank; ++i) {
      double fi = obs[2 + i].AsDouble();
      b[i] += value * fi;
      for (int j = 0; j <= i; ++j) {
        a[i * rank + j] += fi * obs[2 + j].AsDouble();
      }
    }
  }
  // Symmetrize and regularize: A += λ·n·I (the weighted-λ ALS variant).
  double ridge = regularization * static_cast<double>(observations.size());
  for (int i = 0; i < rank; ++i) {
    for (int j = i + 1; j < rank; ++j) a[i * rank + j] = a[j * rank + i];
    a[i * rank + i] += ridge;
  }
  std::vector<double> row;
  bool ok = SolveSpd(std::move(a), std::move(b), &row);
  FLINKLESS_CHECK(ok, "ALS normal equations not positive definite");
  Record out = MakeRecord(kind, key[0].AsInt64());
  for (double f : row) out.emplace_back(f);
  return out;
}

Plan BuildAlsPlan(int rank, double regularization) {
  Plan plan;
  auto state = plan.Source("state");      // (kind, id, f_0..f_{r-1})
  auto ratings = plan.Source("ratings");  // (user, item, value)

  // ---- half-step 1: users from the current item rows ----
  auto item_rows = plan.Filter(
      state,
      [](const Record& r) { return r[0].AsInt64() == kItemKind; },
      "item-rows");
  auto user_observations = plan.Join(
      ratings, item_rows, {1}, {1},
      [rank](const Record& rating, const Record& item) {
        Record out = MakeRecord(rating[0].AsInt64(), rating[2].AsDouble());
        for (int f = 0; f < rank; ++f) out.push_back(item[2 + f]);
        return out;
      },
      "gather-item-rows");
  auto new_users = plan.GroupReduceByKey(
      user_observations, {0},
      [rank, regularization](const Record& key,
                             const std::vector<Record>& group) {
        return SolveEntity(kUserKind, key, group, rank, regularization);
      },
      "solve-users");

  // ---- half-step 2: items from the freshly solved user rows ----
  auto item_observations = plan.Join(
      ratings, new_users, {0}, {1},
      [rank](const Record& rating, const Record& user) {
        Record out = MakeRecord(rating[1].AsInt64(), rating[2].AsDouble());
        for (int f = 0; f < rank; ++f) out.push_back(user[2 + f]);
        return out;
      },
      "gather-user-rows");
  auto new_items = plan.GroupReduceByKey(
      item_observations, {0},
      [rank, regularization](const Record& key,
                             const std::vector<Record>& group) {
        return SolveEntity(kItemKind, key, group, rank, regularization);
      },
      "solve-items");

  // Re-co-partition by the state key (kind, id) so the feedback edge hands
  // the driver a correctly partitioned state.
  auto combined = plan.Union(new_users, new_items, "factors");
  auto next = plan.ReduceByKey(
      combined, {0, 1}, [](const Record& a, const Record&) { return a; },
      "materialize-state");
  plan.Output(next, "next_state");
  return plan;
}

std::map<std::pair<int64_t, int64_t>, std::vector<double>> RowsByEntity(
    const PartitionedDataset& state, int rank) {
  std::map<std::pair<int64_t, int64_t>, std::vector<double>> rows;
  for (int p = 0; p < state.num_partitions(); ++p) {
    for (const Record& r : state.partition(p)) {
      std::vector<double> row(rank);
      for (int f = 0; f < rank; ++f) row[f] = r[2 + f].AsDouble();
      rows[{r[0].AsInt64(), r[1].AsInt64()}] = std::move(row);
    }
  }
  return rows;
}

}  // namespace

std::vector<Rating> GenerateRatings(int64_t num_users, int64_t num_items,
                                    int rank, double density, double noise,
                                    Rng* rng) {
  FLINKLESS_CHECK(num_users > 0 && num_items > 0 && rank > 0,
                  "bad ratings-generator arguments");
  // Ground-truth factors with uniform [0,1) entries.
  std::vector<std::vector<double>> u(num_users, std::vector<double>(rank));
  std::vector<std::vector<double>> m(num_items, std::vector<double>(rank));
  for (auto& row : u) {
    for (double& f : row) f = rng->NextDouble();
  }
  for (auto& row : m) {
    for (double& f : row) f = rng->NextDouble();
  }
  auto truth = [&](int64_t user, int64_t item) {
    double dot = 0;
    for (int f = 0; f < rank; ++f) dot += u[user][f] * m[item][f];
    return dot + noise * rng->NextGaussian();
  };

  std::set<std::pair<int64_t, int64_t>> cells;
  // Every user and every item observed at least once.
  for (int64_t user = 0; user < num_users; ++user) {
    cells.emplace(user, user % num_items);
  }
  for (int64_t item = 0; item < num_items; ++item) {
    cells.emplace(item % num_users, item);
  }
  for (int64_t user = 0; user < num_users; ++user) {
    for (int64_t item = 0; item < num_items; ++item) {
      if (rng->NextBernoulli(density)) cells.emplace(user, item);
    }
  }
  std::vector<Rating> ratings;
  ratings.reserve(cells.size());
  for (auto [user, item] : cells) {
    ratings.push_back({user, item, truth(user, item)});
  }
  return ratings;
}

double RatingsRmse(const std::vector<Rating>& ratings,
                   const std::vector<std::vector<double>>& user_factors,
                   const std::vector<std::vector<double>>& item_factors) {
  if (ratings.empty()) return 0;
  double sum = 0;
  for (const Rating& r : ratings) {
    const auto& u = user_factors[r.user];
    const auto& m = item_factors[r.item];
    double dot = 0;
    for (size_t f = 0; f < u.size(); ++f) dot += u[f] * m[f];
    double err = dot - r.value;
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(ratings.size()));
}

std::vector<double> InitialFactorRow(int64_t entity_id, int rank,
                                     bool is_item) {
  std::vector<double> row(rank);
  for (int f = 0; f < rank; ++f) {
    uint64_t h = Mix64(static_cast<uint64_t>(entity_id) * 2654435761ULL +
                       static_cast<uint64_t>(f) * 40503ULL +
                       (is_item ? 0x9e3779b9ULL : 0));
    // Uniform in [0.1, 1.1): strictly positive keeps the first normal
    // equations well conditioned.
    row[f] = 0.1 + static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  return row;
}

ReseedFactorsCompensation::ReseedFactorsCompensation(int64_t num_users,
                                                     int64_t num_items,
                                                     int rank)
    : num_users_(num_users), num_items_(num_items), rank_(rank) {}

Status ReseedFactorsCompensation::Compensate(
    const iteration::IterationContext& ctx, iteration::IterationState* state,
    const std::vector<int>& lost) {
  (void)ctx;
  if (state->kind() != iteration::StateKind::kBulk) {
    return Status::InvalidArgument(
        "reseed-factors compensates bulk iterations only");
  }
  auto* bulk = static_cast<iteration::BulkState*>(state);
  const int parts = bulk->num_partitions();
  std::set<int> lost_set(lost.begin(), lost.end());
  for (int p : lost_set) bulk->data().ClearPartition(p);

  auto reseed = [&](int64_t kind, int64_t count) {
    for (int64_t id = 0; id < count; ++id) {
      Record key = MakeRecord(kind, id);
      int p = PartitionedDataset::PartitionOf(key, {0, 1}, parts);
      if (lost_set.count(p) == 0) continue;
      Record row = MakeRecord(kind, id);
      for (double f : InitialFactorRow(id, rank_, kind == kItemKind)) {
        row.emplace_back(f);
      }
      bulk->data().partition(p).push_back(std::move(row));
    }
  };
  reseed(kUserKind, num_users_);
  reseed(kItemKind, num_items_);
  return Status::OK();
}

Result<AlsResult> RunAls(const std::vector<Rating>& ratings,
                         int64_t num_users, int64_t num_items,
                         const AlsOptions& options, iteration::JobEnv env,
                         iteration::FaultTolerancePolicy* policy) {
  if (num_users < 1 || num_items < 1 || ratings.empty()) {
    return Status::InvalidArgument("ALS needs users, items and ratings");
  }
  for (const Rating& r : ratings) {
    if (r.user < 0 || r.user >= num_users || r.item < 0 ||
        r.item >= num_items) {
      return Status::OutOfRange("rating references unknown user/item");
    }
  }

  Plan plan = BuildAlsPlan(options.rank, options.regularization);

  std::vector<Record> rating_records;
  rating_records.reserve(ratings.size());
  for (const Rating& r : ratings) {
    rating_records.push_back(MakeRecord(r.user, r.item, r.value));
  }
  PartitionedDataset rating_ds = PartitionedDataset::HashPartitioned(
      std::move(rating_records), {0}, options.num_partitions);
  dataflow::Bindings statics;
  statics["ratings"] = &rating_ds;

  std::vector<Record> initial_rows;
  auto seed_rows = [&](int64_t kind, int64_t count) {
    for (int64_t id = 0; id < count; ++id) {
      Record row = MakeRecord(kind, id);
      for (double f :
           InitialFactorRow(id, options.rank, kind == kItemKind)) {
        row.emplace_back(f);
      }
      initial_rows.push_back(std::move(row));
    }
  };
  seed_rows(kUserKind, num_users);
  seed_rows(kItemKind, num_items);
  PartitionedDataset initial = PartitionedDataset::HashPartitioned(
      std::move(initial_rows), {0, 1}, options.num_partitions);

  iteration::BulkIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.message_log = options.message_log;
  config.state_key = {0, 1};
  const int rank = options.rank;
  const double tolerance = options.tolerance;
  config.convergence = [rank, tolerance](const PartitionedDataset& prev,
                                         const PartitionedDataset& next,
                                         double* metric) {
    auto old_rows = RowsByEntity(prev, rank);
    double max_move = 0;
    for (int p = 0; p < next.num_partitions(); ++p) {
      for (const Record& r : next.partition(p)) {
        auto it = old_rows.find({r[0].AsInt64(), r[1].AsInt64()});
        if (it == old_rows.end()) {
          max_move = std::numeric_limits<double>::infinity();
          continue;
        }
        for (int f = 0; f < rank; ++f) {
          max_move = std::max(max_move,
                              std::abs(r[2 + f].AsDouble() - it->second[f]));
        }
      }
    }
    *metric = max_move;
    return max_move < tolerance;
  };

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;

  iteration::BulkIterationDriver driver(&plan, statics, config, exec, env);
  FLINKLESS_ASSIGN_OR_RETURN(iteration::BulkIterationResult run,
                             driver.Run(std::move(initial), policy));

  AlsResult result;
  result.user_factors.assign(num_users, std::vector<double>(rank, 0.0));
  result.item_factors.assign(num_items, std::vector<double>(rank, 0.0));
  for (const auto& [key, row] : RowsByEntity(run.final_state, rank)) {
    auto [kind, id] = key;
    if (kind == kUserKind && id >= 0 && id < num_users) {
      result.user_factors[id] = row;
    } else if (kind == kItemKind && id >= 0 && id < num_items) {
      result.item_factors[id] = row;
    } else {
      return Status::Internal("unexpected factor row in final state");
    }
  }
  result.rmse =
      RatingsRmse(ratings, result.user_factors, result.item_factors);
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  return result;
}

AlsResult ReferenceAls(const std::vector<Rating>& ratings, int64_t num_users,
                       int64_t num_items, const AlsOptions& options) {
  const int rank = options.rank;
  std::vector<std::vector<double>> users(num_users);
  std::vector<std::vector<double>> items(num_items);
  for (int64_t u = 0; u < num_users; ++u) {
    users[u] = InitialFactorRow(u, rank, false);
  }
  for (int64_t i = 0; i < num_items; ++i) {
    items[i] = InitialFactorRow(i, rank, true);
  }

  std::vector<std::vector<const Rating*>> by_user(num_users);
  std::vector<std::vector<const Rating*>> by_item(num_items);
  for (const Rating& r : ratings) {
    by_user[r.user].push_back(&r);
    by_item[r.item].push_back(&r);
  }

  auto solve = [&](const std::vector<const Rating*>& observations,
                   const std::vector<std::vector<double>>& counterpart,
                   bool counterpart_is_item) {
    std::vector<double> a(static_cast<size_t>(rank) * rank, 0.0);
    std::vector<double> b(rank, 0.0);
    for (const Rating* r : observations) {
      const auto& row =
          counterpart[counterpart_is_item ? r->item : r->user];
      for (int i = 0; i < rank; ++i) {
        b[i] += r->value * row[i];
        for (int j = 0; j <= i; ++j) a[i * rank + j] += row[i] * row[j];
      }
    }
    double ridge =
        options.regularization * static_cast<double>(observations.size());
    for (int i = 0; i < rank; ++i) {
      for (int j = i + 1; j < rank; ++j) a[i * rank + j] = a[j * rank + i];
      a[i * rank + i] += ridge;
    }
    std::vector<double> row;
    bool ok = SolveSpd(std::move(a), std::move(b), &row);
    FLINKLESS_CHECK(ok, "reference ALS normal equations not PD");
    return row;
  };

  AlsResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    double max_move = 0;
    for (int64_t u = 0; u < num_users; ++u) {
      auto next = solve(by_user[u], items, /*counterpart_is_item=*/true);
      for (int f = 0; f < rank; ++f) {
        max_move = std::max(max_move, std::abs(next[f] - users[u][f]));
      }
      users[u] = std::move(next);
    }
    for (int64_t i = 0; i < num_items; ++i) {
      auto next = solve(by_item[i], users, /*counterpart_is_item=*/false);
      for (int f = 0; f < rank; ++f) {
        max_move = std::max(max_move, std::abs(next[f] - items[i][f]));
      }
      items[i] = std::move(next);
    }
    if (max_move < options.tolerance) {
      result.converged = true;
      ++iter;
      break;
    }
  }
  result.user_factors = std::move(users);
  result.item_factors = std::move(items);
  result.rmse =
      RatingsRmse(ratings, result.user_factors, result.item_factors);
  result.iterations = iter;
  result.supersteps_executed = iter;
  return result;
}

}  // namespace flinkless::algos
