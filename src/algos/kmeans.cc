#include "algos/kmeans.h"

#include <cmath>
#include <limits>
#include <set>

#include "algos/datasets.h"
#include "common/logging.h"
#include "dataflow/executor.h"

namespace flinkless::algos {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

std::vector<Point> GenerateBlobs(int k, int points_per_blob,
                                 double center_radius, double stddev,
                                 Rng* rng) {
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(k) * points_per_blob);
  for (int blob = 0; blob < k; ++blob) {
    double angle = 2.0 * M_PI * blob / k;
    double cx = center_radius * std::cos(angle);
    double cy = center_radius * std::sin(angle);
    for (int i = 0; i < points_per_blob; ++i) {
      points.push_back(
          {cx + stddev * rng->NextGaussian(), cy + stddev * rng->NextGaussian()});
    }
  }
  return points;
}

namespace {

double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

size_t NearestCentroid(const Point& p, const std::vector<Point>& centroids) {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = SquaredDistance(p, centroids[c]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

std::vector<Point> ReferenceKMeans(const std::vector<Point>& points,
                                   std::vector<Point> centroids,
                                   int max_iterations, double tolerance) {
  const size_t k = centroids.size();
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> sum_x(k, 0), sum_y(k, 0);
    std::vector<int64_t> count(k, 0);
    for (const Point& p : points) {
      size_t c = NearestCentroid(p, centroids);
      sum_x[c] += p.x;
      sum_y[c] += p.y;
      ++count[c];
    }
    double max_move = 0;
    for (size_t c = 0; c < k; ++c) {
      if (count[c] == 0) continue;  // empty cluster keeps its centroid
      Point next{sum_x[c] / count[c], sum_y[c] / count[c]};
      max_move = std::max(max_move,
                          std::sqrt(SquaredDistance(next, centroids[c])));
      centroids[c] = next;
    }
    if (max_move < tolerance) break;
  }
  return centroids;
}

double ClusteringCost(const std::vector<Point>& points,
                      const std::vector<Point>& centroids) {
  double cost = 0;
  for (const Point& p : points) {
    cost += SquaredDistance(p, centroids[NearestCentroid(p, centroids)]);
  }
  return cost;
}

std::vector<Point> InitialCentroids(const std::vector<Point>& points, int k) {
  FLINKLESS_CHECK(static_cast<int>(points.size()) >= k,
                  "need at least k points");
  std::vector<Point> centroids;
  for (const Point& p : points) {
    bool duplicate = false;
    for (const Point& c : centroids) {
      if (c.x == p.x && c.y == p.y) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) centroids.push_back(p);
    if (static_cast<int>(centroids.size()) == k) break;
  }
  FLINKLESS_CHECK(static_cast<int>(centroids.size()) == k,
                  "fewer than k distinct points");
  return centroids;
}

Plan BuildKMeansPlan() {
  Plan plan;
  auto points = plan.Source("points");        // (point_id, x, y)
  auto centroids = plan.Source("state");      // (centroid_id, x, y)

  // Every point meets every centroid (k is small, so the broadcast is
  // cheap): (point_id, centroid_id, dist2, x, y).
  auto candidates = plan.Cross(
      points, centroids,
      [](const Record& p, const Record& c) {
        double dx = p[1].AsDouble() - c[1].AsDouble();
        double dy = p[2].AsDouble() - c[2].AsDouble();
        return MakeRecord(p[0].AsInt64(), c[0].AsInt64(), dx * dx + dy * dy,
                          p[1].AsDouble(), p[2].AsDouble());
      },
      "distance-to-centroids");

  // Keep the nearest centroid per point (ties break toward the smaller
  // centroid id for determinism).
  auto assignment = plan.ReduceByKey(
      candidates, {0},
      [](const Record& a, const Record& b) {
        double da = a[2].AsDouble(), db = b[2].AsDouble();
        if (da != db) return da < db ? a : b;
        return a[1].AsInt64() <= b[1].AsInt64() ? a : b;
      },
      "assign-points");

  // Per-centroid running sums: (centroid_id, sum_x, sum_y, count).
  auto contributions = plan.Map(
      assignment,
      [](const Record& r) {
        return MakeRecord(r[1].AsInt64(), r[3].AsDouble(), r[4].AsDouble(),
                          int64_t{1});
      },
      "centroid-contribution");
  auto sums = plan.ReduceByKey(
      contributions, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsDouble() + b[1].AsDouble(),
                          a[2].AsDouble() + b[2].AsDouble(),
                          a[3].AsInt64() + b[3].AsInt64());
      },
      "recompute-centroids");

  // New centroid = mean of its points; centroids that attracted no point
  // keep their old position (cogroup against the previous state).
  auto next = plan.CoGroup(
      centroids, sums, {0}, {0},
      [](const Record& key, const std::vector<Record>& old_group,
         const std::vector<Record>& sum_group, std::vector<Record>* out) {
        if (!sum_group.empty()) {
          const Record& s = sum_group.front();
          double n = static_cast<double>(s[3].AsInt64());
          out->push_back(MakeRecord(key[0].AsInt64(), s[1].AsDouble() / n,
                                    s[2].AsDouble() / n));
        } else if (!old_group.empty()) {
          out->push_back(old_group.front());
        }
      },
      "keep-or-update");

  plan.Output(next, "next_state");
  return plan;
}

ReseedCentroidsCompensation::ReseedCentroidsCompensation(
    const std::vector<Point>* points, int num_centroids)
    : points_(points), num_centroids_(num_centroids) {
  FLINKLESS_CHECK(points_ != nullptr && !points_->empty(),
                  "reseed-centroids needs the input points");
}

Status ReseedCentroidsCompensation::Compensate(
    const iteration::IterationContext& ctx, iteration::IterationState* state,
    const std::vector<int>& lost) {
  (void)ctx;
  if (state->kind() != iteration::StateKind::kBulk) {
    return Status::InvalidArgument(
        "reseed-centroids compensates bulk iterations only");
  }
  auto* bulk = static_cast<iteration::BulkState*>(state);
  const int parts = bulk->num_partitions();
  std::set<int> lost_set(lost.begin(), lost.end());
  for (int p : lost_set) {
    std::vector<Record>& partition = bulk->data().partition(p);
    partition.clear();
    for (int64_t c = 0; c < num_centroids_; ++c) {
      if (PartitionOfVertex(c, parts) != p) continue;
      // Deterministic reseed: a pseudo-random but reproducible input point.
      const Point& seed =
          (*points_)[static_cast<size_t>(c * 7919 + 13) % points_->size()];
      partition.push_back(MakeRecord(c, seed.x, seed.y));
    }
  }
  return Status::OK();
}

Result<KMeansResult> RunKMeans(const std::vector<Point>& points,
                               const KMeansOptions& options,
                               iteration::JobEnv env,
                               iteration::FaultTolerancePolicy* policy) {
  if (options.k < 1 || static_cast<int>(points.size()) < options.k) {
    return Status::InvalidArgument("k must be in [1, num_points]");
  }
  Plan plan = BuildKMeansPlan();

  std::vector<Record> point_records;
  point_records.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    point_records.push_back(
        MakeRecord(static_cast<int64_t>(i), points[i].x, points[i].y));
  }
  PartitionedDataset point_ds = PartitionedDataset::HashPartitioned(
      std::move(point_records), {0}, options.num_partitions);
  dataflow::Bindings statics;
  statics["points"] = &point_ds;

  std::vector<Point> initial = InitialCentroids(points, options.k);
  std::vector<Record> centroid_records;
  for (int c = 0; c < options.k; ++c) {
    centroid_records.push_back(
        MakeRecord(static_cast<int64_t>(c), initial[c].x, initial[c].y));
  }
  PartitionedDataset initial_state = PartitionedDataset::HashPartitioned(
      std::move(centroid_records), {0}, options.num_partitions);

  iteration::BulkIterationConfig config;
  config.max_iterations = options.max_iterations;
  config.message_log = options.message_log;
  config.state_key = {0};
  const double tolerance = options.tolerance;
  config.convergence = [tolerance](const PartitionedDataset& prev,
                                   const PartitionedDataset& next,
                                   double* metric) {
    std::map<int64_t, Point> old_centroids;
    for (int p = 0; p < prev.num_partitions(); ++p) {
      for (const Record& r : prev.partition(p)) {
        old_centroids[r[0].AsInt64()] = {r[1].AsDouble(), r[2].AsDouble()};
      }
    }
    double max_move = 0;
    for (int p = 0; p < next.num_partitions(); ++p) {
      for (const Record& r : next.partition(p)) {
        auto it = old_centroids.find(r[0].AsInt64());
        if (it == old_centroids.end()) {
          max_move = std::numeric_limits<double>::infinity();
          continue;
        }
        double dx = r[1].AsDouble() - it->second.x;
        double dy = r[2].AsDouble() - it->second.y;
        max_move = std::max(max_move, std::sqrt(dx * dx + dy * dy));
      }
    }
    *metric = max_move;
    return max_move < tolerance;
  };

  // Installs a tracer when options.trace_path asks for one; the file is
  // written when trace_file leaves scope (even on an error return).
  runtime::ScopedTraceFile trace_file(options.trace_path, env.clock,
                                      &env.tracer);
  runtime::ScopedMetricsFile metrics_file(options.metrics_path, env.metrics,
                                          &env.metrics_sink);

  dataflow::ExecOptions exec;
  exec.num_partitions = options.num_partitions;
  exec.num_threads = options.num_threads;
  exec.use_columnar = options.columnar_batch;
  exec.clock = env.clock;
  exec.costs = env.costs;
  exec.tracer = env.tracer;

  iteration::BulkIterationDriver driver(&plan, statics, config, exec, env);
  FLINKLESS_ASSIGN_OR_RETURN(iteration::BulkIterationResult run,
                             driver.Run(std::move(initial_state), policy));

  KMeansResult result;
  result.centroids.assign(options.k, Point{});
  for (const Record& r : run.final_state.Collect()) {
    int64_t c = r[0].AsInt64();
    if (c < 0 || c >= options.k) {
      return Status::Internal("centroid id " + std::to_string(c) +
                              " out of range");
    }
    result.centroids[c] = {r[1].AsDouble(), r[2].AsDouble()};
  }
  result.cost = ClusteringCost(points, result.centroids);
  result.iterations = run.iterations;
  result.supersteps_executed = run.supersteps_executed;
  result.converged = run.converged;
  result.failures_recovered = run.failures_recovered;
  return result;
}

}  // namespace flinkless::algos
