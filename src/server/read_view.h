// ReadView: an epoch-pinned, partially materialized read replica of one
// job's iteration state (DESIGN.md §16).
//
// The JobServer answers Lookup(job, key) from these views, never from the
// live iteration state: the driver publishes into the view only at
// consistent superstep boundaries (the epoch hooks of iteration/epoch.h),
// so a reader always observes one prefix-consistent epoch — never a
// half-applied delta, and never the cleared-but-not-yet-compensated state
// a failure leaves behind mid-recovery.
//
// Partial materialization (in the spirit of Noria's partially stateful
// dataflow, Gjengset et al., OSDI'18): a view materializes only the
// partitions readers actually touch. A lookup into a cold partition
// returns kPending and marks the partition *wanted*; the next accepted
// publish materializes it. Cold partitions cost nothing per publish, which
// is what keeps many concurrent serveable jobs affordable.
//
// Refresh rules:
//  * Delta jobs refresh incrementally: each materialized partition keeps a
//    watermark on the solution set's per-partition version clock and pulls
//    only EntriesSince(p, watermark) per publish.
//  * Any failure marks the whole view dirty (MarkAllDirty): recovery may
//    restart partition clocks (ReplacePartition semantics, state.h), so
//    watermarks are meaningless and the next accepted publish fully
//    rematerializes every active partition.
//  * Bulk jobs have no version clocks; every accepted publish copies the
//    active partitions.
//  * Epoch monotonicity: a publish with an epoch older than the view's is
//    skipped (rollback/restart recovery re-executes earlier supersteps;
//    deterministic re-execution makes the re-published epochs
//    content-identical, so the newer pinned view stays correct). An
//    equal-epoch publish is accepted — after a rewind it re-delivers
//    identical content, and accepting it clears the dirty flag.
//
// Threading: not thread-safe; the JobServer serializes all access under
// its turn protocol.

#ifndef FLINKLESS_SERVER_READ_VIEW_H_
#define FLINKLESS_SERVER_READ_VIEW_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dataflow/dataset.h"
#include "dataflow/record.h"
#include "iteration/state.h"

namespace flinkless::server {

class ReadView {
 public:
  enum class Hit : int {
    kFound = 0,    // key present in the materialized partition
    kMissing,      // partition materialized, key absent
    kPending,      // partition not materialized yet (now marked wanted)
  };

  struct LookupResult {
    Hit hit = Hit::kPending;
    /// Borrowed; valid until the next publish/materialize call. Null
    /// unless kFound.
    const dataflow::Record* record = nullptr;
    /// Partition the key routes to.
    int partition = -1;
    /// View epoch the answer observed (-1 before the first publish).
    int epoch = -1;
  };

  /// `key` are the key columns of the served records (the delta job's
  /// solution_key / the bulk job's state_key); lookups present the key
  /// *projection* (identity columns 0..k-1).
  ReadView(dataflow::KeyColumns key, int num_partitions);

  int num_partitions() const { return static_cast<int>(parts_.size()); }

  /// Epoch of the pinned view; -1 before the first publish.
  int epoch() const { return epoch_; }
  bool has_published() const { return epoch_ >= 0; }

  /// Failure hook (kFailureDetected): watermarks may be invalidated by the
  /// recovery, so the next accepted publish fully rematerializes. The
  /// currently pinned epoch stays readable meanwhile.
  void MarkAllDirty() { dirty_ = true; }

  /// Publishes `state` as `epoch`, dispatching on the state's kind.
  /// Returns false when the publish was skipped as older than the pinned
  /// epoch.
  bool Publish(const iteration::IterationState& state, int epoch);

  bool PublishDelta(const iteration::SolutionSet& solution, int epoch);
  bool PublishBulk(const dataflow::PartitionedDataset& data, int epoch);

  /// Point lookup by key projection. A cold partition is marked wanted and
  /// kPending is returned; retry after the next publish (or call a
  /// MaterializePartition* overload when the final state is at hand).
  LookupResult Lookup(const dataflow::Record& key_projection);

  /// Materializes one partition on demand from a finished job's final
  /// state — the "upquery" path for reads that arrive after the last
  /// publish.
  void MaterializePartitionFromSolution(int p,
                                        const iteration::SolutionSet& s);
  void MaterializePartitionFromBulk(int p,
                                    const dataflow::PartitionedDataset& d);

  int materialized_partitions() const;

  // Introspection for tests and metrics mirroring.
  uint64_t publishes() const { return publishes_; }
  uint64_t publishes_skipped() const { return publishes_skipped_; }
  uint64_t full_materializations() const { return full_materializations_; }
  uint64_t delta_refreshes() const { return delta_refreshes_; }
  uint64_t records_refreshed() const { return records_refreshed_; }

 private:
  struct Partition {
    /// key projection -> full record. Ordered map: deterministic iteration
    /// for tests that snapshot a partition.
    std::map<dataflow::Record, dataflow::Record, dataflow::RecordOrder>
        entries;
    /// Solution-set clock value the entries reflect (delta views only).
    uint64_t watermark = 0;
    bool materialized = false;
    /// A reader touched this partition while cold; materialize it at the
    /// next accepted publish.
    bool wanted = false;
  };

  /// True when partition `p` should be (re)filled on this publish.
  bool ActiveOnPublish(const Partition& part) const {
    return part.materialized || part.wanted;
  }

  void FillFromSolution(int p, const iteration::SolutionSet& s);
  void FillFromBulk(int p, const dataflow::PartitionedDataset& d);

  dataflow::KeyColumns key_;
  /// Identity columns 0..k-1: key projections hash/route on themselves.
  dataflow::KeyColumns identity_key_;
  std::vector<Partition> parts_;
  int epoch_ = -1;
  bool dirty_ = false;
  uint64_t publishes_ = 0;
  uint64_t publishes_skipped_ = 0;
  uint64_t full_materializations_ = 0;
  uint64_t delta_refreshes_ = 0;
  uint64_t records_refreshed_ = 0;
};

}  // namespace flinkless::server

#endif  // FLINKLESS_SERVER_READ_VIEW_H_
