// JobServer: admits and runs many concurrent iterative jobs on shared
// runtime services, and serves point reads from their states while they
// run — including while a failure is being compensated (DESIGN.md §16).
//
// The paper's system demonstrates optimistic recovery *in action*: jobs
// keep making progress through failures. This subsystem completes the
// story on the serving side — the fixpoint being computed is also the
// fixpoint being queried, so recovery quality becomes visible as read
// availability and staleness, not just as job runtime.
//
// Scheduling: turn-based cooperative multitasking. Each admitted job runs
// its iteration driver on a dedicated thread, but the thread only computes
// while it holds the server's *turn*: the driver's epoch hook
// (iteration/epoch.h) blocks at every superstep boundary until Pump()
// grants the next turn. Pump() grants one superstep per running job per
// call, round-robin in admission order. Because exactly one thread — a
// turn holder or the pump thread — touches the shared services (SimClock,
// StableStorage, MemoryManager, views, lookup queue) at any moment, and
// every handoff goes through one mutex/condvar pair, the schedule is
// deterministic and the whole server is clean under TSan: same admission
// order => same turn order => same simulated timeline, answers, and
// charges at any executor thread count.
//
// Admission control: a queued job starts only while fewer than
// max_concurrent_jobs run AND the shared MemoryManager's residency is
// within the server budget. The manager is shared across jobs (JobEnv::
// memory), so one job's superstep may spill another job's cold artifacts —
// the per-owner breakdown (MemoryManager::OwnerBreakdown) shows who pays.
//
// Cache reuse: the server keeps one ExecCache slot per dataflow_id,
// attached to the shared manager/storage under "spill/<dataflow_id>/".
// Resubmitting the same dataflow (the same Plan object => the same node
// ids) finds every loop-invariant artifact already built: zero cache
// builds on the re-run. A job whose slot is busy (a live job of the same
// dataflow holds it) falls back to a driver-private cache. The spill-key
// registry (StableStorage::AcquirePrefix) guarantees concurrent owners
// never mix blobs, and Submit rejects duplicate job ids up front.
//
// Reads: EnqueueLookup queues a keyed read; queued reads are served in
// ticket order at deterministic service points — each accepted publish,
// each failure detection (mid-compensation, from the pinned pre-failure
// epoch), and the end of each Pump. Answers carry the observed epoch and
// SimClock-based submit/answer timestamps; each answered read charges one
// record's CPU cost to the shared clock. The synchronous Lookup/
// MultiLookup answer immediately from materialized view state or report
// the partition as pending (marking it wanted — the Noria-style upquery).

#ifndef FLINKLESS_SERVER_JOB_SERVER_H_
#define FLINKLESS_SERVER_JOB_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/exec_cache.h"
#include "dataflow/executor.h"
#include "dataflow/plan.h"
#include "iteration/bulk_iteration.h"
#include "iteration/delta_iteration.h"
#include "iteration/epoch.h"
#include "iteration/policy.h"
#include "iteration/state.h"
#include "runtime/cost_model.h"
#include "runtime/failure.h"
#include "runtime/memory_manager.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"
#include "runtime/tracing.h"
#include "server/read_view.h"

namespace flinkless::server {

/// Everything needed to run one job. Plans, bound datasets, and the policy
/// are borrowed and must outlive the server; the failure schedule is a
/// per-job copy (each job has its own failure timeline).
struct JobSpec {
  /// Unique for the server's lifetime; Submit rejects duplicates so two
  /// live jobs can never share a spill namespace or a view name.
  std::string job_id;
  /// Cache-slot key: jobs with the same dataflow_id (and the same Plan
  /// object) share loop-invariant artifacts across submissions. Empty =
  /// job_id (no sharing).
  std::string dataflow_id;

  iteration::StateKind kind = iteration::StateKind::kDelta;
  const dataflow::Plan* plan = nullptr;
  dataflow::Bindings bindings;
  dataflow::ExecOptions exec;
  iteration::FaultTolerancePolicy* policy = nullptr;
  runtime::FailureSchedule failures;

  /// Delta jobs (kind == kDelta).
  iteration::DeltaIterationConfig delta;
  std::vector<dataflow::Record> initial_solution;
  dataflow::PartitionedDataset initial_workset;

  /// Bulk jobs (kind == kBulk).
  iteration::BulkIterationConfig bulk;
  dataflow::PartitionedDataset initial_state;
};

struct ServerOptions {
  /// Jobs running concurrently; further submissions queue.
  int max_concurrent_jobs = 2;
  /// Byte budget of the shared MemoryManager (0 = unlimited). Also the
  /// admission gate: while residency exceeds it, queued jobs wait.
  uint64_t memory_budget_bytes = 0;
  /// Simulated cost charged per answered lookup; -1 = the cost model's
  /// cpu_per_record_ns.
  int64_t lookup_cost_ns = -1;
};

/// One answered read.
struct LookupAnswer {
  uint64_t ticket = 0;
  std::string job_id;
  dataflow::Record key;
  bool found = false;
  dataflow::Record record;  // empty unless found
  /// Partition the key routed to.
  int partition = -1;
  /// View epoch the answer observed.
  int epoch = -1;
  /// True when the queried job was mid-recovery (failure detected, not yet
  /// compensated) at answer time — served from the pinned pre-failure epoch.
  bool during_recovery = false;
  int64_t submit_sim_ns = 0;
  int64_t answer_sim_ns = 0;
};

/// Final accounting of one finished job.
struct JobReport {
  std::string job_id;
  Status status;
  bool converged = false;
  int iterations = 0;
  int supersteps_executed = 0;
  int failures_recovered = 0;
  /// The job ran on a cache slot a previous job of the same dataflow
  /// already warmed.
  bool cache_slot_reused = false;
  /// Cache entries built during this job's run on its slot (0 on a warm
  /// resubmit — the zero-rebuild guarantee).
  uint64_t cache_builds = 0;
};

class JobServer {
 public:
  /// `clock`, `costs`, and `storage` are the shared runtime services every
  /// job charges against (borrowed). `tracer`/`metrics` may be null.
  JobServer(runtime::SimClock* clock, const runtime::CostModel* costs,
            runtime::StableStorage* storage, ServerOptions options,
            runtime::Tracer* tracer = nullptr,
            runtime::MetricsSink* metrics = nullptr);

  /// Joins any still-running job threads (granting them turns until they
  /// finish), so destruction is safe mid-run.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Queues a job. Fails with AlreadyExists on a duplicate job id (live or
  /// finished) and InvalidArgument on a malformed spec.
  Status Submit(JobSpec spec);

  /// One scheduling round: admit what fits, grant every running job one
  /// superstep turn (admission order), reap finished jobs, serve queued
  /// lookups. Returns true while any job is queued or running.
  bool Pump();

  /// Pumps until every job finished. `max_pumps` guards against a stuck
  /// job (Aborted when exceeded).
  Status RunToCompletion(uint64_t max_pumps = 1'000'000);

  /// Queues a keyed read against `job_id`'s view; returns the ticket. The
  /// answer appears in TakeAnswers() once served (kFound or kMissing) at a
  /// service point; reads of cold partitions wait materialization.
  Result<uint64_t> EnqueueLookup(const std::string& job_id,
                                 dataflow::Record key_projection);

  /// Answers served since the last call, in service order.
  std::vector<LookupAnswer> TakeAnswers();

  /// Synchronous read: answers immediately from the view's pinned epoch.
  /// For a live job whose partition is not materialized yet, fails with
  /// FailedPrecondition after marking the partition wanted (retry after
  /// the next Pump); for a finished job the partition is materialized on
  /// demand from the final state.
  Result<LookupAnswer> Lookup(const std::string& job_id,
                              dataflow::Record key_projection);

  /// Lookup over several keys, all answered from one consistent epoch.
  /// All-or-nothing: any pending partition fails the batch (every cold
  /// partition is marked wanted first).
  Result<std::vector<LookupAnswer>> MultiLookup(
      const std::string& job_id, std::vector<dataflow::Record> keys);

  /// Base-data change hook: drops the dataflow's cached loop-invariant
  /// artifacts so the next submission rebuilds from the new bindings.
  /// FailedPrecondition while a live job holds the slot.
  Status InvalidateDataflow(const std::string& dataflow_id);

  /// The view serving `job_id`'s reads (nullptr for unknown jobs).
  const ReadView* view(const std::string& job_id) const;

  /// Report of a finished job (NotFound until it finishes).
  Result<JobReport> Report(const std::string& job_id) const;

  /// Per-iteration metrics of a job (nullptr for unknown jobs).
  const runtime::MetricsRegistry* job_metrics(const std::string& job_id) const;

  /// Final solution set of a finished delta job (NotFound until then).
  Result<const iteration::SolutionSet*> FinalSolution(
      const std::string& job_id) const;

  runtime::MemoryManager& memory() { return memory_; }

  int num_running() const;
  int num_queued() const;
  uint64_t lookups_answered() const;
  /// Answers served while the queried job was mid-recovery — the
  /// availability the epoch-pinned views buy (the CI smoke asserts > 0).
  uint64_t answered_during_recovery() const;

 private:
  struct CacheSlot {
    std::unique_ptr<dataflow::ExecCache> cache;
    iteration::StateKind kind = iteration::StateKind::kDelta;
    bool in_use = false;
    uint64_t jobs_served = 0;
  };

  struct Job {
    JobSpec spec;
    ReadView view;
    runtime::MetricsRegistry metrics;
    std::thread thread;

    // Turn-protocol flags; all guarded by mu_.
    bool turn_granted = false;
    bool turn_done = false;
    bool finished = false;
    bool reaped = false;
    /// Between kFailureDetected and kRecoveryComplete: reads served from
    /// the pinned epoch count as answered-during-recovery.
    bool in_recovery = false;

    Status run_status;
    iteration::DeltaIterationResult delta_result;
    iteration::BulkIterationResult bulk_result;

    CacheSlot* slot = nullptr;
    bool slot_reused = false;
    uint64_t slot_builds_before = 0;
    /// Builds charged to this job on its slot, settled at reap time.
    uint64_t cache_builds = 0;

    Job(JobSpec s, int num_partitions)
        : spec(std::move(s)),
          view(spec.kind == iteration::StateKind::kDelta
                   ? spec.delta.solution_key
                   : spec.bulk.state_key,
               num_partitions) {}
  };

  struct PendingLookup {
    uint64_t ticket = 0;
    Job* job = nullptr;
    dataflow::Record key;
    int64_t submit_sim_ns = 0;
    bool counted_deferred = false;
  };

  // Thread body of one job; runs the driver between turn grants.
  void JobMain(Job* job);
  Status RunJob(Job* job);
  // Epoch-hook target, called on the job thread while it holds the turn.
  void OnEpochEvent(Job* job, const iteration::EpochInfo& info);
  void EndTurnAndWaitLocked(std::unique_lock<std::mutex>& lk, Job* job);

  // All *Locked methods require mu_ held.
  void AdmitLocked();
  void AssignCacheSlotLocked(Job* job);
  void ReapLocked();
  void ServeQueuedLookupsLocked();
  LookupAnswer AnswerLocked(uint64_t ticket, Job* job,
                            const dataflow::Record& key,
                            const ReadView::LookupResult& r,
                            int64_t submit_sim_ns);
  /// Resolves a kPending hit against a finished job's final state; returns
  /// true when the lookup can be retried.
  bool MaterializeForFinishedLocked(Job* job, int partition);
  Job* FindJobLocked(const std::string& job_id) const;

  runtime::SimClock* clock_;
  const runtime::CostModel* costs_;
  runtime::StableStorage* storage_;
  ServerOptions options_;
  runtime::Tracer* tracer_;
  runtime::MetricsSink* metrics_;
  runtime::MemoryManager memory_;
  int64_t lookup_cost_ns_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  /// All jobs ever submitted, by id (owns them; views and results stay
  /// queryable after finish).
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::deque<Job*> queued_;
  /// Admission order — the deterministic turn order.
  std::vector<Job*> running_;
  std::map<std::string, CacheSlot> cache_slots_;

  std::vector<PendingLookup> pending_lookups_;
  std::vector<LookupAnswer> answered_;
  uint64_t next_ticket_ = 1;
  uint64_t lookups_answered_ = 0;
  uint64_t answered_during_recovery_ = 0;
};

}  // namespace flinkless::server

#endif  // FLINKLESS_SERVER_JOB_SERVER_H_
