#include "server/job_server.h"

#include <utility>

#include "common/logging.h"

namespace flinkless::server {

using dataflow::Record;
using iteration::EpochEvent;
using iteration::EpochInfo;
using iteration::StateKind;

JobServer::JobServer(runtime::SimClock* clock, const runtime::CostModel* costs,
                     runtime::StableStorage* storage, ServerOptions options,
                     runtime::Tracer* tracer, runtime::MetricsSink* metrics)
    : clock_(clock),
      costs_(costs),
      storage_(storage),
      options_(options),
      tracer_(tracer),
      metrics_(metrics),
      memory_(options.memory_budget_bytes) {
  FLINKLESS_CHECK(clock_ != nullptr && costs_ != nullptr && storage_ != nullptr,
                  "the job server needs a clock, a cost model, and a storage");
  FLINKLESS_CHECK(options_.max_concurrent_jobs >= 1,
                  "max_concurrent_jobs must be at least 1");
  memory_.set_metrics(metrics_);
  lookup_cost_ns_ = options_.lookup_cost_ns >= 0 ? options_.lookup_cost_ns
                                                 : costs_->cpu_per_record_ns;
}

JobServer::~JobServer() {
  // Never run what never started; then grant turns until every running
  // driver exits, so job threads are joined before members are torn down.
  {
    std::lock_guard<std::mutex> lk(mu_);
    queued_.clear();
  }
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (running_.empty()) break;
    }
    Pump();
  }
}

Status JobServer::Submit(JobSpec spec) {
  if (spec.job_id.empty()) {
    return Status::InvalidArgument("a job needs a non-empty job_id");
  }
  if (spec.plan == nullptr) {
    return Status::InvalidArgument("job '" + spec.job_id + "' has no plan");
  }
  if (spec.policy == nullptr) {
    return Status::InvalidArgument("job '" + spec.job_id + "' has no policy");
  }
  const int n = spec.exec.num_partitions;
  if (n <= 0) {
    return Status::InvalidArgument("job '" + spec.job_id +
                                   "' needs at least one partition");
  }
  if (spec.kind == StateKind::kDelta &&
      spec.initial_workset.num_partitions() != n) {
    return Status::InvalidArgument(
        "job '" + spec.job_id + "': initial workset has " +
        std::to_string(spec.initial_workset.num_partitions()) +
        " partitions, exec options say " + std::to_string(n));
  }
  if (spec.kind == StateKind::kBulk &&
      spec.initial_state.num_partitions() != n) {
    return Status::InvalidArgument(
        "job '" + spec.job_id + "': initial state has " +
        std::to_string(spec.initial_state.num_partitions()) +
        " partitions, exec options say " + std::to_string(n));
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (jobs_.count(spec.job_id) > 0) {
    // The spill-key registry would catch the namespace collision later
    // with a crash; reject the duplicate id cleanly up front instead
    // (ISSUE: concurrent jobs must never mix blobs).
    return Status::AlreadyExists(
        "job id '" + spec.job_id +
        "' was already submitted; job ids are unique for the server's "
        "lifetime (their spill namespaces and read views collide otherwise)");
  }
  auto job = std::make_unique<Job>(std::move(spec), n);
  Job* raw = job.get();
  jobs_.emplace(raw->spec.job_id, std::move(job));
  queued_.push_back(raw);
  return Status::OK();
}

void JobServer::AssignCacheSlotLocked(Job* job) {
  JobSpec& spec = job->spec;
  const bool wants_cache = spec.kind == StateKind::kDelta
                               ? spec.delta.cache_loop_invariant
                               : spec.bulk.cache_loop_invariant;
  if (!wants_cache || spec.exec.cache != nullptr) return;
  const std::string df =
      spec.dataflow_id.empty() ? spec.job_id : spec.dataflow_id;
  auto it = cache_slots_.find(df);
  if (it != cache_slots_.end() && !it->second.in_use &&
      it->second.kind != spec.kind) {
    // The dataflow changed iteration mode: its volatile bindings differ,
    // so the old artifacts are meaningless. Destroying the slot releases
    // its spill prefix before the replacement re-acquires it.
    cache_slots_.erase(it);
    it = cache_slots_.end();
  }
  if (it == cache_slots_.end()) {
    std::vector<std::string> volatile_bindings;
    if (spec.kind == StateKind::kDelta) {
      volatile_bindings = {spec.delta.workset_binding,
                           spec.delta.solution_binding};
    } else {
      volatile_bindings = {spec.bulk.state_binding};
    }
    CacheSlot slot;
    slot.kind = spec.kind;
    slot.cache =
        std::make_unique<dataflow::ExecCache>(std::move(volatile_bindings));
    slot.cache->set_metrics(metrics_);
    // "spill/<dataflow_id>/" — exclusively owned while the slot lives
    // (StableStorage::AcquirePrefix); segments are tagged with the
    // dataflow id in the shared manager's per-owner breakdown.
    slot.cache->AttachMemoryManager(&memory_, storage_, df);
    it = cache_slots_.emplace(df, std::move(slot)).first;
  }
  CacheSlot& slot = it->second;
  if (slot.in_use) {
    // A live job of the same dataflow holds the slot. The driver falls
    // back to a private cache under "spill/<job_id>/" — safe because live
    // job ids are unique — except in the one corner where this job's id
    // IS the busy namespace; there caching is turned off for the run.
    if (df == spec.job_id) {
      if (spec.kind == StateKind::kDelta) {
        spec.delta.cache_loop_invariant = false;
      } else {
        spec.bulk.cache_loop_invariant = false;
      }
    }
    return;
  }
  slot.in_use = true;
  job->slot = &slot;
  job->slot_reused = slot.jobs_served > 0;
  job->slot_builds_before = slot.cache->builds();
  ++slot.jobs_served;
  spec.exec.cache = slot.cache.get();
}

void JobServer::AdmitLocked() {
  // The memory gate never starves an idle server: with nothing running,
  // residency cannot shrink on its own (warm cache slots keep bytes
  // registered), so the head-of-line job is admitted regardless — its
  // first superstep will spill cold artifacts to fit the budget.
  while (!queued_.empty() &&
         static_cast<int>(running_.size()) < options_.max_concurrent_jobs &&
         (running_.empty() || options_.memory_budget_bytes == 0 ||
          memory_.resident_bytes() <= options_.memory_budget_bytes)) {
    Job* job = queued_.front();
    queued_.pop_front();
    AssignCacheSlotLocked(job);
    running_.push_back(job);
    if (metrics_ != nullptr) {
      metrics_->Count(runtime::metric::kServerJobsAdmitted, -1);
    }
    // The thread parks until its first turn grant, so job setup (driver
    // construction, OnJobStart checkpoints) is serialized like any
    // superstep.
    job->thread = std::thread(&JobServer::JobMain, this, job);
  }
}

void JobServer::JobMain(Job* job) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [job] { return job->turn_granted; });
  }
  Status st = RunJob(job);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job->run_status = st;
    job->finished = true;
    job->turn_granted = false;
    job->turn_done = true;
  }
  cv_.notify_all();
}

Status JobServer::RunJob(Job* job) {
  JobSpec& spec = job->spec;

  iteration::JobEnv env;
  env.clock = clock_;
  env.costs = costs_;
  env.storage = storage_;
  env.metrics = &job->metrics;
  env.failures = &spec.failures;
  env.tracer = tracer_;
  env.metrics_sink = metrics_;
  env.memory = &memory_;
  env.job_id = spec.job_id;

  dataflow::ExecOptions exec = spec.exec;
  if (exec.clock == nullptr) exec.clock = clock_;
  if (exec.costs == nullptr) exec.costs = costs_;

  if (spec.kind == StateKind::kDelta) {
    iteration::DeltaIterationConfig config = spec.delta;
    config.epoch_hook = [this, job](const EpochInfo& info) {
      OnEpochEvent(job, info);
    };
    iteration::DeltaIterationDriver driver(spec.plan, spec.bindings, config,
                                           exec, env);
    Result<iteration::DeltaIterationResult> result = driver.Run(
        spec.initial_solution, spec.initial_workset, spec.policy);
    if (!result.ok()) return result.status();
    job->delta_result = std::move(result).ValueOrDie();
    return Status::OK();
  }
  iteration::BulkIterationConfig config = spec.bulk;
  config.epoch_hook = [this, job](const EpochInfo& info) {
    OnEpochEvent(job, info);
  };
  iteration::BulkIterationDriver driver(spec.plan, spec.bindings, config, exec,
                                        env);
  Result<iteration::BulkIterationResult> result =
      driver.Run(spec.initial_state, spec.policy);
  if (!result.ok()) return result.status();
  job->bulk_result = std::move(result).ValueOrDie();
  return Status::OK();
}

void JobServer::OnEpochEvent(Job* job, const EpochInfo& info) {
  std::unique_lock<std::mutex> lk(mu_);
  if (info.event == EpochEvent::kFailureDetected) {
    // Mid-turn service point: the iteration state is inconsistent, but the
    // view still pins the last published epoch — reads keep flowing while
    // the policy compensates. Recovery may restart partition clocks, so
    // incremental watermarks are dead: full rematerialize next publish.
    job->view.MarkAllDirty();
    job->in_recovery = true;
    ServeQueuedLookupsLocked();
    return;
  }
  {
    runtime::TraceSpan span(tracer_, runtime::SpanKind::kServerPublish,
                            job->spec.job_id);
    const bool accepted = job->view.Publish(*info.state, info.epoch);
    if (span.active()) {
      span.AddArg("epoch", info.epoch);
      span.AddArg("accepted", accepted ? 1 : 0);
    }
    if (metrics_ != nullptr) {
      metrics_->Count(accepted ? runtime::metric::kServerPublishes
                               : runtime::metric::kServerPublishesSkipped,
                      -1);
    }
  }
  if (info.event == EpochEvent::kRecoveryComplete) job->in_recovery = false;
  ServeQueuedLookupsLocked();
  EndTurnAndWaitLocked(lk, job);
}

void JobServer::EndTurnAndWaitLocked(std::unique_lock<std::mutex>& lk,
                                     Job* job) {
  job->turn_granted = false;
  job->turn_done = true;
  cv_.notify_all();
  cv_.wait(lk, [job] { return job->turn_granted; });
  (void)lk;
}

bool JobServer::Pump() {
  std::unique_lock<std::mutex> lk(mu_);
  AdmitLocked();
  // running_ is stable inside the loop (admission above, reaping below),
  // so the turn order is exactly the admission order.
  const size_t count = running_.size();
  for (size_t i = 0; i < count; ++i) {
    Job* job = running_[i];
    if (job->finished) continue;
    job->turn_done = false;
    job->turn_granted = true;
    cv_.notify_all();
    cv_.wait(lk, [job] { return job->turn_done; });
    if (metrics_ != nullptr) {
      metrics_->Count(runtime::metric::kServerTurns, -1);
    }
  }
  ReapLocked();
  AdmitLocked();  // freed capacity: late jobs get their first turn next pump
  ServeQueuedLookupsLocked();
  return !running_.empty() || !queued_.empty();
}

Status JobServer::RunToCompletion(uint64_t max_pumps) {
  uint64_t pumps = 0;
  while (Pump()) {
    if (++pumps > max_pumps) {
      return Status::Aborted("job server exceeded " +
                             std::to_string(max_pumps) +
                             " pumps without draining; stuck job?");
    }
  }
  return Status::OK();
}

void JobServer::ReapLocked() {
  for (auto it = running_.begin(); it != running_.end();) {
    Job* job = *it;
    if (!job->finished) {
      ++it;
      continue;
    }
    if (job->thread.joinable()) job->thread.join();
    if (job->slot != nullptr) {
      job->cache_builds = job->slot->cache->builds() - job->slot_builds_before;
      job->slot->in_use = false;
      job->slot = nullptr;
    }
    job->reaped = true;
    it = running_.erase(it);
  }
}

Result<uint64_t> JobServer::EnqueueLookup(const std::string& job_id,
                                          Record key_projection) {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job '" + job_id + "' on this server");
  }
  PendingLookup pending;
  const uint64_t ticket = next_ticket_++;
  pending.ticket = ticket;
  pending.job = job;
  pending.key = std::move(key_projection);
  pending.submit_sim_ns = clock_->TotalNs();
  pending_lookups_.push_back(std::move(pending));
  return ticket;
}

std::vector<LookupAnswer> JobServer::TakeAnswers() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LookupAnswer> out = std::move(answered_);
  answered_.clear();
  return out;
}

Result<LookupAnswer> JobServer::Lookup(const std::string& job_id,
                                       Record key_projection) {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job '" + job_id + "' on this server");
  }
  ReadView::LookupResult r = job->view.Lookup(key_projection);
  if (r.hit == ReadView::Hit::kPending) {
    if (job->finished && MaterializeForFinishedLocked(job, r.partition)) {
      r = job->view.Lookup(key_projection);
    } else {
      return Status::FailedPrecondition(
          "partition " + std::to_string(r.partition) + " of job '" + job_id +
          "' is not materialized yet; it is now wanted — retry after the "
          "next Pump, or use EnqueueLookup");
    }
  }
  return AnswerLocked(next_ticket_++, job, key_projection, r,
                      clock_->TotalNs());
}

Result<std::vector<LookupAnswer>> JobServer::MultiLookup(
    const std::string& job_id, std::vector<Record> keys) {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job '" + job_id + "' on this server");
  }
  // First pass: every key must be answerable from the one pinned epoch —
  // all-or-nothing, so the batch can never mix materialization states.
  std::vector<ReadView::LookupResult> hits;
  hits.reserve(keys.size());
  int pending = 0;
  for (const Record& key : keys) {
    ReadView::LookupResult r = job->view.Lookup(key);
    if (r.hit == ReadView::Hit::kPending) {
      if (job->finished && MaterializeForFinishedLocked(job, r.partition)) {
        r = job->view.Lookup(key);
      } else {
        ++pending;
      }
    }
    hits.push_back(r);
  }
  if (pending > 0) {
    return Status::FailedPrecondition(
        std::to_string(pending) + " of " + std::to_string(keys.size()) +
        " keys route to partitions of job '" + job_id +
        "' that are not materialized yet (now wanted; retry after the next "
        "Pump)");
  }
  std::vector<LookupAnswer> answers;
  answers.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    answers.push_back(
        AnswerLocked(next_ticket_++, job, keys[i], hits[i], clock_->TotalNs()));
  }
  return answers;
}

void JobServer::ServeQueuedLookupsLocked() {
  for (auto it = pending_lookups_.begin(); it != pending_lookups_.end();) {
    Job* job = it->job;
    ReadView::LookupResult r = job->view.Lookup(it->key);
    if (r.hit == ReadView::Hit::kPending) {
      if (job->finished && MaterializeForFinishedLocked(job, r.partition)) {
        r = job->view.Lookup(it->key);
      } else if (job->finished) {
        // The job died without a final state (e.g. DataLoss under the
        // none-policy): nothing will ever materialize this partition.
        // Answer "missing" from whatever epoch is pinned instead of
        // leaving the ticket queued forever.
        r.hit = ReadView::Hit::kMissing;
      } else {
        if (!it->counted_deferred) {
          it->counted_deferred = true;
          if (metrics_ != nullptr) {
            metrics_->Count(runtime::metric::kServerLookupsDeferred,
                            r.partition);
          }
        }
        ++it;
        continue;
      }
    }
    answered_.push_back(
        AnswerLocked(it->ticket, job, it->key, r, it->submit_sim_ns));
    it = pending_lookups_.erase(it);
  }
}

LookupAnswer JobServer::AnswerLocked(uint64_t ticket, Job* job,
                                     const Record& key,
                                     const ReadView::LookupResult& r,
                                     int64_t submit_sim_ns) {
  LookupAnswer answer;
  answer.ticket = ticket;
  answer.job_id = job->spec.job_id;
  answer.key = key;
  answer.found = r.hit == ReadView::Hit::kFound;
  if (answer.found) answer.record = *r.record;
  answer.partition = r.partition;
  answer.epoch = r.epoch;
  answer.during_recovery = job->in_recovery;
  answer.submit_sim_ns = submit_sim_ns;
  clock_->Add(runtime::Charge::kCompute, lookup_cost_ns_);
  answer.answer_sim_ns = clock_->TotalNs();
  ++lookups_answered_;
  if (job->in_recovery) ++answered_during_recovery_;
  if (metrics_ != nullptr) {
    metrics_->Count(runtime::metric::kServerLookups, r.partition);
    if (!answer.found) {
      metrics_->Count(runtime::metric::kServerLookupsMissed, r.partition);
    }
    metrics_->Observe(runtime::metric::kHistLookupLatency,
                      answer.answer_sim_ns - answer.submit_sim_ns);
  }
  return answer;
}

bool JobServer::MaterializeForFinishedLocked(Job* job, int partition) {
  if (!job->run_status.ok()) return false;
  if (job->spec.kind == StateKind::kDelta) {
    if (job->delta_result.final_solution.num_partitions() !=
        job->view.num_partitions()) {
      return false;
    }
    job->view.MaterializePartitionFromSolution(
        partition, job->delta_result.final_solution);
    return true;
  }
  if (job->bulk_result.final_state.num_partitions() !=
      job->view.num_partitions()) {
    return false;
  }
  job->view.MaterializePartitionFromBulk(partition,
                                         job->bulk_result.final_state);
  return true;
}

Status JobServer::InvalidateDataflow(const std::string& dataflow_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_slots_.find(dataflow_id);
  if (it == cache_slots_.end()) return Status::OK();  // nothing cached
  if (it->second.in_use) {
    return Status::FailedPrecondition(
        "dataflow '" + dataflow_id +
        "' has a live job on its cache slot; invalidate after it finishes");
  }
  it->second.cache->Clear();
  it->second.jobs_served = 0;  // the next submission is a cold rebuild
  return Status::OK();
}

JobServer::Job* JobServer::FindJobLocked(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it != jobs_.end() ? it->second.get() : nullptr;
}

const ReadView* JobServer::view(const std::string& job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  return job != nullptr ? &job->view : nullptr;
}

Result<JobReport> JobServer::Report(const std::string& job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job '" + job_id + "' on this server");
  }
  if (!job->reaped) {
    return Status::NotFound("job '" + job_id + "' has not finished yet");
  }
  JobReport report;
  report.job_id = job_id;
  report.status = job->run_status;
  report.cache_slot_reused = job->slot_reused;
  report.cache_builds = job->cache_builds;
  if (job->spec.kind == StateKind::kDelta) {
    report.converged = job->delta_result.converged;
    report.iterations = job->delta_result.iterations;
    report.supersteps_executed = job->delta_result.supersteps_executed;
    report.failures_recovered = job->delta_result.failures_recovered;
  } else {
    report.converged = job->bulk_result.converged;
    report.iterations = job->bulk_result.iterations;
    report.supersteps_executed = job->bulk_result.supersteps_executed;
    report.failures_recovered = job->bulk_result.failures_recovered;
  }
  return report;
}

const runtime::MetricsRegistry* JobServer::job_metrics(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  return job != nullptr ? &job->metrics : nullptr;
}

Result<const iteration::SolutionSet*> JobServer::FinalSolution(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job '" + job_id + "' on this server");
  }
  if (!job->reaped || !job->run_status.ok()) {
    return Status::FailedPrecondition("job '" + job_id +
                                      "' has no final solution (yet)");
  }
  if (job->spec.kind != StateKind::kDelta) {
    return Status::InvalidArgument("job '" + job_id + "' is not a delta job");
  }
  return static_cast<const iteration::SolutionSet*>(
      &job->delta_result.final_solution);
}

int JobServer::num_running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(running_.size());
}

int JobServer::num_queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queued_.size());
}

uint64_t JobServer::lookups_answered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lookups_answered_;
}

uint64_t JobServer::answered_during_recovery() const {
  std::lock_guard<std::mutex> lk(mu_);
  return answered_during_recovery_;
}

}  // namespace flinkless::server
