#include "server/read_view.h"

#include <utility>

#include "common/logging.h"

namespace flinkless::server {

using dataflow::PartitionedDataset;
using dataflow::Record;
using iteration::SolutionSet;

ReadView::ReadView(dataflow::KeyColumns key, int num_partitions)
    : key_(std::move(key)), parts_(num_partitions) {
  FLINKLESS_CHECK(num_partitions > 0, "read view needs at least one partition");
  identity_key_.resize(key_.size());
  for (size_t i = 0; i < key_.size(); ++i) {
    identity_key_[i] = static_cast<int>(i);
  }
}

bool ReadView::Publish(const iteration::IterationState& state, int epoch) {
  if (state.kind() == iteration::StateKind::kDelta) {
    const auto& delta = static_cast<const iteration::DeltaState&>(state);
    return PublishDelta(delta.solution(), epoch);
  }
  const auto& bulk = static_cast<const iteration::BulkState&>(state);
  return PublishBulk(bulk.data(), epoch);
}

bool ReadView::PublishDelta(const SolutionSet& solution, int epoch) {
  FLINKLESS_CHECK(solution.num_partitions() == num_partitions(),
                  "publish with mismatched partition count");
  if (epoch < epoch_) {
    ++publishes_skipped_;
    return false;
  }
  for (int p = 0; p < num_partitions(); ++p) {
    Partition& part = parts_[p];
    if (!ActiveOnPublish(part)) continue;
    if (dirty_ || !part.materialized) {
      FillFromSolution(p, solution);
      continue;
    }
    // Failure-free incremental refresh: only the entries written after the
    // watermark on this partition's private clock.
    for (Record& record : solution.EntriesSince(p, part.watermark)) {
      Record projection = dataflow::ExtractKey(record, key_);
      part.entries.insert_or_assign(std::move(projection), std::move(record));
      ++records_refreshed_;
    }
    part.watermark = solution.version(p);
    ++delta_refreshes_;
  }
  epoch_ = epoch;
  dirty_ = false;
  ++publishes_;
  return true;
}

bool ReadView::PublishBulk(const PartitionedDataset& data, int epoch) {
  FLINKLESS_CHECK(data.num_partitions() == num_partitions(),
                  "publish with mismatched partition count");
  if (epoch < epoch_) {
    ++publishes_skipped_;
    return false;
  }
  for (int p = 0; p < num_partitions(); ++p) {
    if (ActiveOnPublish(parts_[p])) FillFromBulk(p, data);
  }
  epoch_ = epoch;
  dirty_ = false;
  ++publishes_;
  return true;
}

ReadView::LookupResult ReadView::Lookup(const Record& key_projection) {
  LookupResult result;
  result.partition = PartitionedDataset::PartitionOf(
      key_projection, identity_key_, num_partitions());
  result.epoch = epoch_;
  Partition& part = parts_[result.partition];
  if (!has_published() || !part.materialized) {
    part.wanted = true;
    result.hit = Hit::kPending;
    return result;
  }
  auto it = part.entries.find(key_projection);
  if (it == part.entries.end()) {
    result.hit = Hit::kMissing;
  } else {
    result.hit = Hit::kFound;
    result.record = &it->second;
  }
  return result;
}

void ReadView::MaterializePartitionFromSolution(int p, const SolutionSet& s) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "materialize of partition " << p << " out of range");
  FillFromSolution(p, s);
}

void ReadView::MaterializePartitionFromBulk(int p,
                                            const PartitionedDataset& d) {
  FLINKLESS_CHECK(p >= 0 && p < num_partitions(),
                  "materialize of partition " << p << " out of range");
  FillFromBulk(p, d);
}

int ReadView::materialized_partitions() const {
  int count = 0;
  for (const Partition& part : parts_) count += part.materialized ? 1 : 0;
  return count;
}

void ReadView::FillFromSolution(int p, const SolutionSet& s) {
  Partition& part = parts_[p];
  part.entries.clear();
  for (Record& record : s.PartitionRecords(p)) {
    Record projection = dataflow::ExtractKey(record, key_);
    part.entries.emplace(std::move(projection), std::move(record));
    ++records_refreshed_;
  }
  part.watermark = s.version(p);
  part.materialized = true;
  part.wanted = false;
  ++full_materializations_;
}

void ReadView::FillFromBulk(int p, const PartitionedDataset& d) {
  Partition& part = parts_[p];
  part.entries.clear();
  for (const Record& record : d.partition(p)) {
    Record projection = dataflow::ExtractKey(record, key_);
    part.entries.insert_or_assign(std::move(projection), record);
    ++records_refreshed_;
  }
  part.watermark = 0;
  part.materialized = true;
  part.wanted = false;
  ++full_materializations_;
}

}  // namespace flinkless::server
