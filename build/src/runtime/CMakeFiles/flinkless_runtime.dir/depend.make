# Empty dependencies file for flinkless_runtime.
# This may be replaced when dependencies are built.
