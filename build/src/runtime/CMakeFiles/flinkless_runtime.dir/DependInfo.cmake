
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cc" "src/runtime/CMakeFiles/flinkless_runtime.dir/cluster.cc.o" "gcc" "src/runtime/CMakeFiles/flinkless_runtime.dir/cluster.cc.o.d"
  "/root/repo/src/runtime/failure.cc" "src/runtime/CMakeFiles/flinkless_runtime.dir/failure.cc.o" "gcc" "src/runtime/CMakeFiles/flinkless_runtime.dir/failure.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/runtime/CMakeFiles/flinkless_runtime.dir/metrics.cc.o" "gcc" "src/runtime/CMakeFiles/flinkless_runtime.dir/metrics.cc.o.d"
  "/root/repo/src/runtime/sim_clock.cc" "src/runtime/CMakeFiles/flinkless_runtime.dir/sim_clock.cc.o" "gcc" "src/runtime/CMakeFiles/flinkless_runtime.dir/sim_clock.cc.o.d"
  "/root/repo/src/runtime/stable_storage.cc" "src/runtime/CMakeFiles/flinkless_runtime.dir/stable_storage.cc.o" "gcc" "src/runtime/CMakeFiles/flinkless_runtime.dir/stable_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flinkless_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
