file(REMOVE_RECURSE
  "libflinkless_runtime.a"
)
