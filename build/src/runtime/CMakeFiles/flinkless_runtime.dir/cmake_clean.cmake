file(REMOVE_RECURSE
  "CMakeFiles/flinkless_runtime.dir/cluster.cc.o"
  "CMakeFiles/flinkless_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/flinkless_runtime.dir/failure.cc.o"
  "CMakeFiles/flinkless_runtime.dir/failure.cc.o.d"
  "CMakeFiles/flinkless_runtime.dir/metrics.cc.o"
  "CMakeFiles/flinkless_runtime.dir/metrics.cc.o.d"
  "CMakeFiles/flinkless_runtime.dir/sim_clock.cc.o"
  "CMakeFiles/flinkless_runtime.dir/sim_clock.cc.o.d"
  "CMakeFiles/flinkless_runtime.dir/stable_storage.cc.o"
  "CMakeFiles/flinkless_runtime.dir/stable_storage.cc.o.d"
  "libflinkless_runtime.a"
  "libflinkless_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
