# Empty compiler generated dependencies file for flinkless_algos.
# This may be replaced when dependencies are built.
