
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/als.cc" "src/algos/CMakeFiles/flinkless_algos.dir/als.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/als.cc.o.d"
  "/root/repo/src/algos/connected_components.cc" "src/algos/CMakeFiles/flinkless_algos.dir/connected_components.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/connected_components.cc.o.d"
  "/root/repo/src/algos/datasets.cc" "src/algos/CMakeFiles/flinkless_algos.dir/datasets.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/datasets.cc.o.d"
  "/root/repo/src/algos/kmeans.cc" "src/algos/CMakeFiles/flinkless_algos.dir/kmeans.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/kmeans.cc.o.d"
  "/root/repo/src/algos/pagerank.cc" "src/algos/CMakeFiles/flinkless_algos.dir/pagerank.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/pagerank.cc.o.d"
  "/root/repo/src/algos/refreshers.cc" "src/algos/CMakeFiles/flinkless_algos.dir/refreshers.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/refreshers.cc.o.d"
  "/root/repo/src/algos/sssp.cc" "src/algos/CMakeFiles/flinkless_algos.dir/sssp.cc.o" "gcc" "src/algos/CMakeFiles/flinkless_algos.dir/sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flinkless_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flinkless_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/iteration/CMakeFiles/flinkless_iteration.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/flinkless_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/flinkless_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flinkless_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
