file(REMOVE_RECURSE
  "CMakeFiles/flinkless_algos.dir/als.cc.o"
  "CMakeFiles/flinkless_algos.dir/als.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/connected_components.cc.o"
  "CMakeFiles/flinkless_algos.dir/connected_components.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/datasets.cc.o"
  "CMakeFiles/flinkless_algos.dir/datasets.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/kmeans.cc.o"
  "CMakeFiles/flinkless_algos.dir/kmeans.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/pagerank.cc.o"
  "CMakeFiles/flinkless_algos.dir/pagerank.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/refreshers.cc.o"
  "CMakeFiles/flinkless_algos.dir/refreshers.cc.o.d"
  "CMakeFiles/flinkless_algos.dir/sssp.cc.o"
  "CMakeFiles/flinkless_algos.dir/sssp.cc.o.d"
  "libflinkless_algos.a"
  "libflinkless_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
