file(REMOVE_RECURSE
  "libflinkless_algos.a"
)
