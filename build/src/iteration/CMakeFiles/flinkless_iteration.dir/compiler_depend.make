# Empty compiler generated dependencies file for flinkless_iteration.
# This may be replaced when dependencies are built.
