file(REMOVE_RECURSE
  "libflinkless_iteration.a"
)
