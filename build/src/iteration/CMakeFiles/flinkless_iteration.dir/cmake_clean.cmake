file(REMOVE_RECURSE
  "CMakeFiles/flinkless_iteration.dir/bulk_iteration.cc.o"
  "CMakeFiles/flinkless_iteration.dir/bulk_iteration.cc.o.d"
  "CMakeFiles/flinkless_iteration.dir/delta_iteration.cc.o"
  "CMakeFiles/flinkless_iteration.dir/delta_iteration.cc.o.d"
  "CMakeFiles/flinkless_iteration.dir/state.cc.o"
  "CMakeFiles/flinkless_iteration.dir/state.cc.o.d"
  "libflinkless_iteration.a"
  "libflinkless_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
