
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iteration/bulk_iteration.cc" "src/iteration/CMakeFiles/flinkless_iteration.dir/bulk_iteration.cc.o" "gcc" "src/iteration/CMakeFiles/flinkless_iteration.dir/bulk_iteration.cc.o.d"
  "/root/repo/src/iteration/delta_iteration.cc" "src/iteration/CMakeFiles/flinkless_iteration.dir/delta_iteration.cc.o" "gcc" "src/iteration/CMakeFiles/flinkless_iteration.dir/delta_iteration.cc.o.d"
  "/root/repo/src/iteration/state.cc" "src/iteration/CMakeFiles/flinkless_iteration.dir/state.cc.o" "gcc" "src/iteration/CMakeFiles/flinkless_iteration.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/flinkless_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/flinkless_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flinkless_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
