# Empty compiler generated dependencies file for flinkless_viz.
# This may be replaced when dependencies are built.
