file(REMOVE_RECURSE
  "CMakeFiles/flinkless_viz.dir/render.cc.o"
  "CMakeFiles/flinkless_viz.dir/render.cc.o.d"
  "libflinkless_viz.a"
  "libflinkless_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
