file(REMOVE_RECURSE
  "libflinkless_viz.a"
)
