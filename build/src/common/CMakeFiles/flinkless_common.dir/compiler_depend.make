# Empty compiler generated dependencies file for flinkless_common.
# This may be replaced when dependencies are built.
