file(REMOVE_RECURSE
  "CMakeFiles/flinkless_common.dir/flags.cc.o"
  "CMakeFiles/flinkless_common.dir/flags.cc.o.d"
  "CMakeFiles/flinkless_common.dir/hash.cc.o"
  "CMakeFiles/flinkless_common.dir/hash.cc.o.d"
  "CMakeFiles/flinkless_common.dir/logging.cc.o"
  "CMakeFiles/flinkless_common.dir/logging.cc.o.d"
  "CMakeFiles/flinkless_common.dir/rng.cc.o"
  "CMakeFiles/flinkless_common.dir/rng.cc.o.d"
  "CMakeFiles/flinkless_common.dir/status.cc.o"
  "CMakeFiles/flinkless_common.dir/status.cc.o.d"
  "CMakeFiles/flinkless_common.dir/strings.cc.o"
  "CMakeFiles/flinkless_common.dir/strings.cc.o.d"
  "CMakeFiles/flinkless_common.dir/table.cc.o"
  "CMakeFiles/flinkless_common.dir/table.cc.o.d"
  "libflinkless_common.a"
  "libflinkless_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
