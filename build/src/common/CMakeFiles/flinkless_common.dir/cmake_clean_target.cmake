file(REMOVE_RECURSE
  "libflinkless_common.a"
)
