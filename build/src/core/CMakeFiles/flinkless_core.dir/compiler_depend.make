# Empty compiler generated dependencies file for flinkless_core.
# This may be replaced when dependencies are built.
