file(REMOVE_RECURSE
  "libflinkless_core.a"
)
