file(REMOVE_RECURSE
  "CMakeFiles/flinkless_core.dir/lineage.cc.o"
  "CMakeFiles/flinkless_core.dir/lineage.cc.o.d"
  "CMakeFiles/flinkless_core.dir/policies.cc.o"
  "CMakeFiles/flinkless_core.dir/policies.cc.o.d"
  "libflinkless_core.a"
  "libflinkless_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
