# Empty dependencies file for flinkless_graph.
# This may be replaced when dependencies are built.
