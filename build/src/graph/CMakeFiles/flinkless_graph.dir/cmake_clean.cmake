file(REMOVE_RECURSE
  "CMakeFiles/flinkless_graph.dir/generators.cc.o"
  "CMakeFiles/flinkless_graph.dir/generators.cc.o.d"
  "CMakeFiles/flinkless_graph.dir/graph.cc.o"
  "CMakeFiles/flinkless_graph.dir/graph.cc.o.d"
  "CMakeFiles/flinkless_graph.dir/io.cc.o"
  "CMakeFiles/flinkless_graph.dir/io.cc.o.d"
  "CMakeFiles/flinkless_graph.dir/reference.cc.o"
  "CMakeFiles/flinkless_graph.dir/reference.cc.o.d"
  "libflinkless_graph.a"
  "libflinkless_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
