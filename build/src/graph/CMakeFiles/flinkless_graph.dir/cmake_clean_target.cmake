file(REMOVE_RECURSE
  "libflinkless_graph.a"
)
