
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/dataset.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/dataset.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/dataset.cc.o.d"
  "/root/repo/src/dataflow/executor.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/executor.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/executor.cc.o.d"
  "/root/repo/src/dataflow/plan.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/plan.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/plan.cc.o.d"
  "/root/repo/src/dataflow/record.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/record.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/record.cc.o.d"
  "/root/repo/src/dataflow/schema.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/schema.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/schema.cc.o.d"
  "/root/repo/src/dataflow/value.cc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/value.cc.o" "gcc" "src/dataflow/CMakeFiles/flinkless_dataflow.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flinkless_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/flinkless_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
