file(REMOVE_RECURSE
  "libflinkless_dataflow.a"
)
