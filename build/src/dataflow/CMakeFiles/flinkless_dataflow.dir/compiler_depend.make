# Empty compiler generated dependencies file for flinkless_dataflow.
# This may be replaced when dependencies are built.
