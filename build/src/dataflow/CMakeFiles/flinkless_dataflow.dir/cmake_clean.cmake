file(REMOVE_RECURSE
  "CMakeFiles/flinkless_dataflow.dir/dataset.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/dataset.cc.o.d"
  "CMakeFiles/flinkless_dataflow.dir/executor.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/executor.cc.o.d"
  "CMakeFiles/flinkless_dataflow.dir/plan.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/plan.cc.o.d"
  "CMakeFiles/flinkless_dataflow.dir/record.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/record.cc.o.d"
  "CMakeFiles/flinkless_dataflow.dir/schema.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/schema.cc.o.d"
  "CMakeFiles/flinkless_dataflow.dir/value.cc.o"
  "CMakeFiles/flinkless_dataflow.dir/value.cc.o.d"
  "libflinkless_dataflow.a"
  "libflinkless_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinkless_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
