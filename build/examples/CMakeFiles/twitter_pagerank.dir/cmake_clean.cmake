file(REMOVE_RECURSE
  "CMakeFiles/twitter_pagerank.dir/twitter_pagerank.cpp.o"
  "CMakeFiles/twitter_pagerank.dir/twitter_pagerank.cpp.o.d"
  "twitter_pagerank"
  "twitter_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
