# Empty compiler generated dependencies file for twitter_pagerank.
# This may be replaced when dependencies are built.
