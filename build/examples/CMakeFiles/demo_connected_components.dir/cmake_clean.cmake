file(REMOVE_RECURSE
  "CMakeFiles/demo_connected_components.dir/demo_connected_components.cpp.o"
  "CMakeFiles/demo_connected_components.dir/demo_connected_components.cpp.o.d"
  "demo_connected_components"
  "demo_connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
