# Empty dependencies file for demo_connected_components.
# This may be replaced when dependencies are built.
