file(REMOVE_RECURSE
  "CMakeFiles/demo_pagerank.dir/demo_pagerank.cpp.o"
  "CMakeFiles/demo_pagerank.dir/demo_pagerank.cpp.o.d"
  "demo_pagerank"
  "demo_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
