# Empty compiler generated dependencies file for demo_pagerank.
# This may be replaced when dependencies are built.
