file(REMOVE_RECURSE
  "CMakeFiles/als_test.dir/als_test.cc.o"
  "CMakeFiles/als_test.dir/als_test.cc.o.d"
  "als_test"
  "als_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/als_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
