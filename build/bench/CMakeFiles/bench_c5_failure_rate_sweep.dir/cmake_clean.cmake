file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_failure_rate_sweep.dir/bench_c5_failure_rate_sweep.cpp.o"
  "CMakeFiles/bench_c5_failure_rate_sweep.dir/bench_c5_failure_rate_sweep.cpp.o.d"
  "bench_c5_failure_rate_sweep"
  "bench_c5_failure_rate_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_failure_rate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
