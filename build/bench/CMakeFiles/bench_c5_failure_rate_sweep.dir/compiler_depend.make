# Empty compiler generated dependencies file for bench_c5_failure_rate_sweep.
# This may be replaced when dependencies are built.
