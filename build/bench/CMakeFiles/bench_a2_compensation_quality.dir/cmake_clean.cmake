file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_compensation_quality.dir/bench_a2_compensation_quality.cpp.o"
  "CMakeFiles/bench_a2_compensation_quality.dir/bench_a2_compensation_quality.cpp.o.d"
  "bench_a2_compensation_quality"
  "bench_a2_compensation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_compensation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
