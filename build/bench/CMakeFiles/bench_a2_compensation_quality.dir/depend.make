# Empty dependencies file for bench_a2_compensation_quality.
# This may be replaced when dependencies are built.
