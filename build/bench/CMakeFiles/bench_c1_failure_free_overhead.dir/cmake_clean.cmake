file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_failure_free_overhead.dir/bench_c1_failure_free_overhead.cpp.o"
  "CMakeFiles/bench_c1_failure_free_overhead.dir/bench_c1_failure_free_overhead.cpp.o.d"
  "bench_c1_failure_free_overhead"
  "bench_c1_failure_free_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_failure_free_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
