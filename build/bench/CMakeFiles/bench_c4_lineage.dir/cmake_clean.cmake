file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_lineage.dir/bench_c4_lineage.cpp.o"
  "CMakeFiles/bench_c4_lineage.dir/bench_c4_lineage.cpp.o.d"
  "bench_c4_lineage"
  "bench_c4_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
