# Empty dependencies file for bench_c4_lineage.
# This may be replaced when dependencies are built.
