# Empty dependencies file for bench_m1_engine_micro.
# This may be replaced when dependencies are built.
