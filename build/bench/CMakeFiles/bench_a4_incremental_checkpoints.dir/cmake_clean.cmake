file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_incremental_checkpoints.dir/bench_a4_incremental_checkpoints.cpp.o"
  "CMakeFiles/bench_a4_incremental_checkpoints.dir/bench_a4_incremental_checkpoints.cpp.o.d"
  "bench_a4_incremental_checkpoints"
  "bench_a4_incremental_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_incremental_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
