# Empty dependencies file for bench_a4_incremental_checkpoints.
# This may be replaced when dependencies are built.
