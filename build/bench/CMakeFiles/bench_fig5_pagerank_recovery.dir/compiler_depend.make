# Empty compiler generated dependencies file for bench_fig5_pagerank_recovery.
# This may be replaced when dependencies are built.
