file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pagerank_recovery.dir/bench_fig5_pagerank_recovery.cpp.o"
  "CMakeFiles/bench_fig5_pagerank_recovery.dir/bench_fig5_pagerank_recovery.cpp.o.d"
  "bench_fig5_pagerank_recovery"
  "bench_fig5_pagerank_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pagerank_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
