file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_large_graph.dir/bench_c3_large_graph.cpp.o"
  "CMakeFiles/bench_c3_large_graph.dir/bench_c3_large_graph.cpp.o.d"
  "bench_c3_large_graph"
  "bench_c3_large_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_large_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
