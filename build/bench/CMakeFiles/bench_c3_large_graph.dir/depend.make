# Empty dependencies file for bench_c3_large_graph.
# This may be replaced when dependencies are built.
