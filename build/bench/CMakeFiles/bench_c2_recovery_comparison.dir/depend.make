# Empty dependencies file for bench_c2_recovery_comparison.
# This may be replaced when dependencies are built.
