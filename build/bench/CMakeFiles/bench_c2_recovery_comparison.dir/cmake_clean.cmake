file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_recovery_comparison.dir/bench_c2_recovery_comparison.cpp.o"
  "CMakeFiles/bench_c2_recovery_comparison.dir/bench_c2_recovery_comparison.cpp.o.d"
  "bench_c2_recovery_comparison"
  "bench_c2_recovery_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_recovery_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
