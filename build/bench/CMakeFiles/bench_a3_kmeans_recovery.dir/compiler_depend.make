# Empty compiler generated dependencies file for bench_a3_kmeans_recovery.
# This may be replaced when dependencies are built.
