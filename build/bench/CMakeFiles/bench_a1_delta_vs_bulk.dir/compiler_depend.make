# Empty compiler generated dependencies file for bench_a1_delta_vs_bulk.
# This may be replaced when dependencies are built.
