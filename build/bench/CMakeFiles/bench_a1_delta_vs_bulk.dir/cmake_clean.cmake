file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_delta_vs_bulk.dir/bench_a1_delta_vs_bulk.cpp.o"
  "CMakeFiles/bench_a1_delta_vs_bulk.dir/bench_a1_delta_vs_bulk.cpp.o.d"
  "bench_a1_delta_vs_bulk"
  "bench_a1_delta_vs_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_delta_vs_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
