# Empty compiler generated dependencies file for bench_a5_als_recovery.
# This may be replaced when dependencies are built.
