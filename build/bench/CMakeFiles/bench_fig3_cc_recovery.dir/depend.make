# Empty dependencies file for bench_fig3_cc_recovery.
# This may be replaced when dependencies are built.
