// WordCount: the engine as a plain (non-iterative) dataflow system — the
// §2.1 "grep-style log analysis" end of the workload spectrum. Shows the
// raw Plan/Executor API without the iteration and recovery layers.
//
//   ./examples/wordcount
//   ./examples/wordcount --text="to be or not to be" --partitions=2

#include <iostream>

#include "common/flags.h"
#include "common/strings.h"
#include "dataflow/executor.h"
#include "dataflow/plan.h"

using namespace flinkless;
using dataflow::MakeRecord;
using dataflow::Record;

int main(int argc, char** argv) {
  FlagParser flags;
  std::string* text = flags.String(
      "text",
      "optimistic recovery for iterative dataflows in action "
      "iterative dataflows recover with compensation functions "
      "not with checkpoints so failure free dataflows run at full speed",
      "input text");
  int64_t* partitions = flags.Int64("partitions", 4, "degree of parallelism");
  int64_t* min_count = flags.Int64("min-count", 1, "only print words with "
                                                   "at least this count");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }
  const int parts = static_cast<int>(*partitions);

  // One record per input line (here: the whole text as one line per 8
  // words, to give the partitions something to do).
  auto words = SplitWhitespace(*text);
  std::vector<Record> lines;
  for (size_t i = 0; i < words.size(); i += 8) {
    std::string line;
    for (size_t j = i; j < std::min(i + 8, words.size()); ++j) {
      if (j > i) line += " ";
      line += words[j];
    }
    lines.push_back(MakeRecord(line));
  }
  auto input = dataflow::PartitionedDataset::RoundRobin(lines, parts);

  // The classic three-operator dataflow: tokenize, count, filter.
  dataflow::Plan plan;
  auto source = plan.Source("lines");
  auto tokens = plan.FlatMap(
      source,
      [](const Record& r, std::vector<Record>* out) {
        for (const std::string& word : SplitWhitespace(r[0].AsString())) {
          out->push_back(MakeRecord(word, int64_t{1}));
        }
      },
      "tokenize");
  auto counts = plan.ReduceByKey(
      tokens, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsString(), a[1].AsInt64() + b[1].AsInt64());
      },
      "count");
  int64_t threshold = *min_count;
  auto frequent = plan.Filter(
      counts,
      [threshold](const Record& r) { return r[1].AsInt64() >= threshold; },
      "frequent");
  plan.Output(frequent, "counts");

  std::cout << "plan:\n" << plan.Explain() << "\n";

  dataflow::Executor executor({parts, nullptr, nullptr});
  dataflow::ExecStats stats;
  auto outputs = executor.Execute(plan, {{"lines", &input}}, &stats);
  if (!outputs.ok()) {
    std::cerr << outputs.status() << "\n";
    return 1;
  }

  // Sort by descending count for display.
  auto result = outputs->at("counts").Collect();
  std::sort(result.begin(), result.end(),
            [](const Record& a, const Record& b) {
              if (a[1].AsInt64() != b[1].AsInt64()) {
                return a[1].AsInt64() > b[1].AsInt64();
              }
              return a[0].AsString() < b[0].AsString();
            });
  for (const Record& r : result) {
    std::cout << "  " << r[1].AsInt64() << "  " << r[0].AsString() << "\n";
  }
  std::cout << "\n" << stats.records_processed << " records processed, "
            << stats.messages_shuffled << " shuffled across partitions\n";
  return 0;
}
