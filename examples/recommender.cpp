// A small collaborative-filtering recommender built on the ALS dataflow:
// factorize a synthetic rating matrix, survive a mid-training failure via
// the reseed-factors compensation, and print top-N recommendations for a
// few users. Shows the ML side of optimistic recovery end to end.
//
//   ./examples/recommender
//   ./examples/recommender --users=200 --items=100 --rank=6 --fail=5:1

#include <algorithm>
#include <iostream>
#include <set>

#include "algos/als.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"

using namespace flinkless;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  FlagParser flags;
  int64_t* users = flags.Int64("users", 120, "number of users");
  int64_t* items = flags.Int64("items", 60, "number of items");
  int64_t* rank = flags.Int64("rank", 4, "latent factor rank");
  int64_t* partitions = flags.Int64("partitions", 4, "degree of parallelism");
  int64_t* iterations = flags.Int64("iterations", 15, "ALS supersteps");
  double* density = flags.Double("density", 0.15, "observed cell fraction");
  int64_t* seed = flags.Int64("seed", 2026, "data generator seed");
  std::string* fail_spec =
      flags.String("fail", "4:0", "failure schedule iter:parts[;...]");
  std::string* strategy = flags.String(
      "strategy", "optimistic", "optimistic|rollback|restart|none");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }

  Rng rng(static_cast<uint64_t>(*seed));
  auto ratings = algos::GenerateRatings(*users, *items,
                                        static_cast<int>(*rank), *density,
                                        /*noise=*/0.05, &rng);
  std::cout << "ratings: " << ratings.size() << " observed cells over "
            << *users << " users x " << *items << " items\n";

  auto failures_or = runtime::FailureSchedule::Parse(*fail_spec);
  if (!failures_or.ok()) {
    std::cerr << failures_or.status() << "\n";
    return 1;
  }
  runtime::FailureSchedule failures = std::move(failures_or).ValueOrDie();

  algos::AlsOptions options;
  options.rank = static_cast<int>(*rank);
  options.num_partitions = static_cast<int>(*partitions);
  options.max_iterations = static_cast<int>(*iterations);

  algos::ReseedFactorsCompensation compensation(*users, *items, options.rank);
  runtime::StableStorage storage(nullptr, nullptr);
  std::unique_ptr<iteration::FaultTolerancePolicy> policy;
  if (*strategy == "optimistic") {
    policy = std::make_unique<core::OptimisticRecoveryPolicy>(&compensation);
  } else if (*strategy == "rollback") {
    policy = std::make_unique<core::CheckpointRollbackPolicy>(2);
  } else if (*strategy == "restart") {
    policy = std::make_unique<core::RestartPolicy>();
  } else if (*strategy == "none") {
    policy = std::make_unique<core::NoFaultTolerancePolicy>();
  } else {
    std::cerr << "unknown strategy '" << *strategy << "'\n";
    return 1;
  }

  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.metrics = &metrics;
  env.failures = &failures;
  env.storage = &storage;
  env.job_id = "recommender";

  auto model = algos::RunAls(ratings, *users, *items, options, env,
                             policy.get());
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status() << "\n";
    return 1;
  }
  std::cout << "trained in " << model->iterations << " supersteps ("
            << model->failures_recovered << " failures recovered), RMSE "
            << model->rmse << "\n\n";

  // Top-3 unrated items for the first few users.
  std::vector<std::set<int64_t>> rated(*users);
  for (const auto& r : ratings) rated[r.user].insert(r.item);
  TablePrinter table({"user", "top-1", "top-2", "top-3"});
  for (int64_t user = 0; user < std::min<int64_t>(5, *users); ++user) {
    std::vector<std::pair<double, int64_t>> scored;
    for (int64_t item = 0; item < *items; ++item) {
      if (rated[user].count(item) > 0) continue;
      double score = 0;
      for (int f = 0; f < options.rank; ++f) {
        score += model->user_factors[user][f] * model->item_factors[item][f];
      }
      scored.emplace_back(score, item);
    }
    std::sort(scored.rbegin(), scored.rend());
    auto cell = [&](size_t i) {
      if (i >= scored.size()) return std::string("-");
      return "item " + std::to_string(scored[i].second) + " (" +
             FormatDouble(scored[i].first, 3) + ")";
    };
    table.Row()
        .Cell("user " + std::to_string(user))
        .Cell(cell(0))
        .Cell(cell(1))
        .Cell(cell(2));
  }
  table.PrintAscii(std::cout);
  return 0;
}
