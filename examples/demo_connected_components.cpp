// The Connected Components demo of paper §3.2, in the terminal.
//
// Attendees pick a graph, pick which partitions to fail in which
// iterations, and watch the delta iteration converge: each component is a
// color, failures highlight the lost vertices, the compensation function
// restores them to their initial labels, and the bottom plots show (i) the
// number of vertices converged to their final component per iteration —
// with a plummet at the failure — and (ii) messages per iteration — with
// the post-failure bump.
//
//   ./examples/demo_connected_components                      # defaults
//   ./examples/demo_connected_components --graph=twitter --fail=3:0
//   ./examples/demo_connected_components --interactive        # n/b/p/q keys
//
// Flags: --graph=demo|twitter|chain|grid, --fail=iter:parts[;iter:parts],
//        --partitions=N, --threads=N, --delay-ms=N, --interactive,
//        --no-color,
//        --strategy=optimistic|rollback|confined|confined-log|restart|none,
//        --msglog=true|false (outbound message log; confined-log recovery
//        replays it instead of recomputing — implied by
//        --strategy=confined-log),
//        --cache=true|false,
//        --batch=true|false (columnar vs record-at-a-time execution),
//        --simd=auto|off|sse4.2|avx2|max (columnar kernel tier),
//        --mem-budget=BYTES (spill cached artifacts beyond this),
//        --metrics-out=PATH (metrics v2 export: .prom = Prometheus text,
//        else NDJSON), --profile (critical-path profile; implied by
//        --trace), --baseline (failure-free re-run; recovery health is then
//        reported net of it)

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/refreshers.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/profiler.h"
#include "runtime/stable_storage.h"
#include "viz/playback.h"
#include "viz/render.h"

using namespace flinkless;

namespace {

Result<graph::Graph> MakeGraph(const std::string& name) {
  if (name == "demo") return graph::DemoGraph();
  if (name == "chain") return graph::ChainGraph(24);
  if (name == "grid") return graph::GridGraph(5, 8);
  if (name == "twitter") {
    Rng rng(42);
    return graph::PreferentialAttachment(1000, 3, &rng);
  }
  return Status::InvalidArgument("unknown graph '" + name +
                                 "' (demo|twitter|chain|grid)");
}

void InteractiveLoop(viz::Playback<viz::ComponentsFrame>* playback,
                     viz::ColorAssigner* colors) {
  std::cout << "interactive controls: n=next  b=backward  p=play to end  "
               "q=quit\n\n";
  std::cout << viz::RenderComponents(playback->Current(), colors) << "\n";
  std::string line;
  for (;;) {
    std::cout << "[frame " << playback->position() + 1 << "/"
              << playback->size() << "] > " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line == "q") break;
    if (line == "b") {
      playback->StepBackward();
      std::cout << viz::RenderComponents(playback->Current(), colors) << "\n";
    } else if (line == "p") {
      playback->Play();
      while (playback->StepForward()) {
        std::cout << viz::RenderComponents(playback->Current(), colors)
                  << "\n";
      }
    } else {  // default: next
      if (playback->StepForward()) {
        std::cout << viz::RenderComponents(playback->Current(), colors)
                  << "\n";
      } else {
        std::cout << "(at the last frame)\n";
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  std::string* graph_name =
      flags.String("graph", "demo", "demo|twitter|chain|grid");
  std::string* fail_spec = flags.String(
      "fail", "3:0", "failure schedule iter:parts[;iter:parts], '' = none");
  std::string* strategy = flags.String(
      "strategy", "optimistic",
      "optimistic|rollback|confined|confined-log|restart|none");
  int64_t* partitions = flags.Int64("partitions", 4, "degree of parallelism");
  int64_t* threads = flags.Int64(
      "threads", 1, "executor worker threads (1 = serial, 0 = all cores)");
  int64_t* delay_ms =
      flags.Int64("delay-ms", 0, "pause between frames (slow-motion demo)");
  bool* interactive =
      flags.Bool("interactive", false, "step with n/b/p/q instead of playing");
  bool* no_color = flags.Bool("no-color", false, "disable ANSI colors");
  std::string* trace_path = flags.String(
      "trace", "",
      "write an execution trace here (.json = Chrome/Perfetto, .ndjson)");
  bool* cache = flags.Bool(
      "cache", true, "reuse loop-invariant shuffles/indexes across supersteps");
  bool* msglog = flags.Bool(
      "msglog", false,
      "log outbound shuffle messages per superstep (confined-log recovery "
      "replays them; implied by --strategy=confined-log)");
  bool* batch = flags.Bool(
      "batch", true,
      "columnar batch execution on the shuffle/join/reduce hot path "
      "(false = record-at-a-time; results are byte-identical)");
  std::string* simd = flags.String(
      "simd", "auto",
      "SIMD tier for the columnar kernels: auto|off|sse4.2|avx2|max "
      "(results are byte-identical at every tier)");
  int64_t* mem_budget = flags.Int64(
      "mem-budget", 0,
      "byte budget for cached artifacts; cold entries spill to stable "
      "storage beyond it (0 = unlimited)");
  std::string* metrics_out = flags.String(
      "metrics-out", "",
      "write a metrics v2 export here (.prom = Prometheus text, else "
      "NDJSON)");
  bool* profile = flags.Bool(
      "profile", false,
      "trace the run and print the critical-path profile (implied by "
      "--trace)");
  bool* baseline = flags.Bool(
      "baseline", false,
      "re-run the job failure-free and report recovery health net of it");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }

  auto graph_or = MakeGraph(*graph_name);
  if (!graph_or.ok()) {
    std::cerr << graph_or.status() << "\n";
    return 1;
  }
  graph::Graph g = std::move(graph_or).ValueOrDie();
  auto failures_or = runtime::FailureSchedule::Parse(*fail_spec);
  if (!failures_or.ok()) {
    std::cerr << failures_or.status() << "\n";
    return 1;
  }
  runtime::FailureSchedule failures = std::move(failures_or).ValueOrDie();

  const int parts = static_cast<int>(*partitions);
  const bool small = g.num_vertices() <= 64;
  auto truth = graph::ReferenceConnectedComponents(g);

  std::cout << "Optimistic Recovery demo — Connected Components (delta "
               "iterations)\n"
            << g.ToString() << ", " << parts << " partitions, strategy "
            << *strategy << "\n";
  if (small) std::cout << viz::DescribePartitions(g.num_vertices(), parts);
  for (const auto& event : failures.events()) {
    std::cout << "scheduled failure: " << event.ToString() << "\n";
  }
  std::cout << "\n";

  // Record one frame per iteration through the stats hook.
  viz::Playback<viz::ComponentsFrame> playback;
  {
    viz::ComponentsFrame initial;
    initial.iteration = 0;
    initial.labels.resize(g.num_vertices());
    for (int64_t v = 0; v < g.num_vertices(); ++v) initial.labels[v] = v;
    initial.converged_vertices = 0;
    for (int64_t v = 0; v < g.num_vertices(); ++v) {
      if (initial.labels[v] == truth[v]) ++initial.converged_vertices;
    }
    playback.Record(std::move(initial));
  }

  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.metrics = &metrics;
  env.failures = &failures;
  env.job_id = "demo-cc";
  runtime::StableStorage storage(nullptr, nullptr);
  env.storage = &storage;
  // Metrics v2 + tracing: the demo owns the clock, sink, and tracer so the
  // dashboard, profiler, and exports below can read them after the run.
  runtime::SimClock sim_clock;
  env.clock = &sim_clock;
  runtime::CostModel costs;
  env.costs = &costs;
  runtime::MetricsSink sink;
  env.metrics_sink = &sink;
  runtime::Tracer::Options tracer_options;
  tracer_options.clock = &sim_clock;
  runtime::Tracer tracer(tracer_options);
  const bool tracing = *profile || !trace_path->empty();
  if (tracing) env.tracer = &tracer;

  algos::ConnectedComponentsOptions options;
  options.num_partitions = parts;
  options.num_threads = static_cast<int>(*threads);
  // trace_path/metrics_path stay unset: the demo owns the tracer and sink
  // itself (above) and writes the export files at the end.
  options.cache_loop_invariant = *cache;
  options.columnar_batch = *batch;
  if (!dataflow::simd::ParseSimdLevel(*simd, &options.simd)) {
    std::cerr << "unknown --simd level '" << *simd << "'\n";
    return 1;
  }
  options.message_log = *msglog || *strategy == "confined-log";
  if (*mem_budget > 0) {
    options.memory_budget_bytes = static_cast<uint64_t>(*mem_budget);
  }

  algos::FixComponentsCompensation compensation(&g);
  // The baseline re-run (below) needs a fresh policy of the same kind, so
  // policy construction is a factory rather than a one-off.
  auto make_policy =
      [&]() -> std::unique_ptr<iteration::FaultTolerancePolicy> {
    if (*strategy == "optimistic") {
      return std::make_unique<core::OptimisticRecoveryPolicy>(&compensation);
    }
    if (*strategy == "rollback") {
      return std::make_unique<core::CheckpointRollbackPolicy>(2);
    }
    if (*strategy == "confined") {
      return std::make_unique<core::ConfinedRollbackPolicy>(
          2, algos::MakeNeighborhoodRefresher(&g));
    }
    if (*strategy == "confined-log") {
      return std::make_unique<core::ConfinedLogReplayPolicy>(
          2, algos::MakeNeighborhoodRefresher(&g));
    }
    if (*strategy == "restart") return std::make_unique<core::RestartPolicy>();
    if (*strategy == "none") {
      return std::make_unique<core::NoFaultTolerancePolicy>();
    }
    return nullptr;
  };
  std::unique_ptr<iteration::FaultTolerancePolicy> policy = make_policy();
  if (policy == nullptr) {
    std::cerr << "unknown strategy '" << *strategy << "'\n";
    return 1;
  }

  // One recorded frame per superstep, delivered through the snapshot hook.
  auto run = algos::RunConnectedComponentsWithSnapshots(
      g, options, env, policy.get(), &truth,
      [&](int iteration, const std::vector<int64_t>& labels,
          const std::vector<int>& lost_partitions, bool failure,
          int64_t messages, int64_t converged) {
        viz::ComponentsFrame frame;
        frame.iteration = iteration;
        frame.labels = labels;
        frame.failure = failure;
        frame.messages = messages;
        frame.converged_vertices = converged;
        frame.lost_vertices = viz::VerticesOfPartitions(
            g.num_vertices(), parts, lost_partitions);
        playback.Record(std::move(frame));
      });
  if (!run.ok()) {
    std::cerr << "job failed: " << run.status() << "\n";
    return 1;
  }

  viz::ColorAssigner colors(!*no_color && small);
  if (*interactive && small) {
    InteractiveLoop(&playback, &colors);
  } else if (small) {
    playback.Rewind();
    std::cout << viz::RenderComponents(playback.Current(), &colors) << "\n";
    while (playback.StepForward()) {
      if (*delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(*delay_ms));
      }
      std::cout << viz::RenderComponents(playback.Current(), &colors) << "\n";
    }
  } else {
    std::cout << "(large graph: progress tracked via statistics only, as in "
                 "the paper)\n\n";
  }

  // The two GUI plots (bottom corners of Figure 2).
  std::cout << AsciiPlot(metrics.GaugeSeries("converged_vertices"), 8,
                         "vertices converged to final component per "
                         "iteration:")
            << "\n";
  std::vector<double> message_series;
  for (const auto& it : metrics.iterations()) {
    message_series.push_back(static_cast<double>(it.messages_shuffled));
  }
  std::cout << AsciiPlot(message_series, 8, "messages per iteration:")
            << "\n";

  if (*mem_budget > 0) {
    uint64_t spills = 0, unspills = 0, spilled_bytes = 0, peak = 0;
    for (const auto& it : metrics.iterations()) {
      spills += it.spills;
      unspills += it.unspills;
      spilled_bytes += it.spilled_bytes;
      peak = std::max(peak, it.peak_resident_bytes);
    }
    std::cout << "memory budget " << *mem_budget << " bytes: spills="
              << spills << " unspills=" << unspills << " spilled_bytes="
              << spilled_bytes << " peak_resident_bytes=" << peak << "\n";
  }

  // Metrics v2 rollup: cache effectiveness, the batch/row execution mix,
  // and the per-partition dashboard.
  runtime::MetricsSnapshot msnap = sink.Collect();
  std::cout << "cache: hits=" << msnap.CounterTotal(runtime::metric::kCacheHits)
            << " builds=" << msnap.CounterTotal(runtime::metric::kCacheBuilds)
            << " invalidations="
            << msnap.CounterTotal(runtime::metric::kCacheInvalidations)
            << " records_not_reshuffled="
            << msnap.CounterTotal(
                   runtime::metric::kCacheRecordsNotReshuffled)
            << "\n"
            << "exec: batch_ops="
            << msnap.CounterTotal(runtime::metric::kExecBatchOps)
            << " row_fallback_ops="
            << msnap.CounterTotal(runtime::metric::kExecRowFallbackOps)
            << " records=" << msnap.CounterTotal(runtime::metric::kExecRecords)
            << " shuffled="
            << msnap.CounterTotal(runtime::metric::kShuffleFanout) << "\n\n"
            << viz::RenderMetricsDashboard(msnap) << "\n";

  // Recovery health: one block per injected failure. With --baseline the
  // same job runs once more without failures and the window costs are
  // reported net of it ("time lost to the failure" instead of gross cost).
  if (run->failures_recovered > 0) {
    runtime::MetricsRegistry baseline_registry;
    const runtime::MetricsRegistry* baseline_metrics = nullptr;
    if (*baseline) {
      runtime::FailureSchedule no_failures;
      runtime::StableStorage baseline_storage(nullptr, nullptr);
      runtime::SimClock baseline_clock;
      iteration::JobEnv baseline_env;
      baseline_env.clock = &baseline_clock;
      baseline_env.costs = &costs;
      baseline_env.metrics = &baseline_registry;
      baseline_env.failures = &no_failures;
      baseline_env.storage = &baseline_storage;
      baseline_env.job_id = "demo-cc-baseline";
      std::unique_ptr<iteration::FaultTolerancePolicy> baseline_policy =
          make_policy();
      auto base_run = algos::RunConnectedComponents(g, options, baseline_env,
                                                    baseline_policy.get());
      if (base_run.ok()) {
        baseline_metrics = &baseline_registry;
      } else {
        std::cerr << "baseline run failed: " << base_run.status() << "\n";
      }
    }
    std::cout << runtime::RenderRecoveryHealth(
                     runtime::ComputeRecoveryHealth(metrics, baseline_metrics))
              << "\n";
  }

  if (tracing) {
    std::cout << runtime::ProfileReport::FromSnapshot(tracer.Flush())
                     .RenderText()
              << "\n";
  }
  if (!trace_path->empty()) {
    if (Status s = runtime::WriteTraceFile(tracer, *trace_path); !s.ok()) {
      std::cerr << "trace export failed: " << s << "\n";
    }
  }
  if (!metrics_out->empty()) {
    if (Status s = runtime::WriteMetricsFile(metrics, sink, *metrics_out);
        !s.ok()) {
      std::cerr << "metrics export failed: " << s << "\n";
    }
  }

  std::cout << "result correct vs union-find ground truth: "
            << (run->labels == truth ? "yes" : "NO") << " ("
            << run->iterations << " iterations, " << run->failures_recovered
            << " failures recovered)\n";
  return run->labels == truth ? 0 : 1;
}
