// The PageRank demo of paper §3.3, in the terminal.
//
// Vertices are drawn as bars whose width is proportional to their PageRank
// ("the size of a vertex represents the magnitude of its PageRank value").
// A failure loses the ranks of the vertices in the failed partitions; the
// FixRanks compensation redistributes the lost probability mass uniformly
// over them, and the algorithm reconverges to the true ranks. The bottom
// plots show (i) vertices converged to their true rank per iteration — the
// plummet after the failure — and (ii) the L1 norm of the difference
// between consecutive rank estimates — downward trend with a spike at the
// failure.
//
//   ./examples/demo_pagerank
//   ./examples/demo_pagerank --graph=twitter --fail=5:0 --partitions=8
//   ./examples/demo_pagerank --interactive
//
// Flags: --graph=demo|twitter|cycle, --fail=iter:parts[;...],
//        --partitions=N, --threads=N, --max-iterations=N, --delay-ms=N,
//        --interactive,
//        --strategy=optimistic|rollback|confined|confined-log|restart|none,
//        --msglog=true|false (outbound message log; implied by
//        --strategy=confined-log),
//        --compensation=redistribute|uniform|full, --cache=true|false,
//        --batch=true|false (columnar vs record-at-a-time execution),
//        --simd=auto|off|sse4.2|avx2|max (columnar kernel tier),
//        --mem-budget=BYTES (spill cached artifacts beyond this),
//        --metrics-out=PATH (metrics v2 export: .prom = Prometheus text,
//        else NDJSON), --profile (critical-path profile; implied by
//        --trace), --baseline (failure-free re-run; recovery health is then
//        reported net of it)

#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "algos/pagerank.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/profiler.h"
#include "runtime/stable_storage.h"
#include "viz/playback.h"
#include "viz/render.h"

using namespace flinkless;

namespace {

Result<graph::Graph> MakeGraph(const std::string& name) {
  if (name == "demo") return graph::DemoDirectedGraph();
  if (name == "cycle") {
    graph::Graph g(8, true);
    for (int64_t v = 0; v < 8; ++v) {
      FLINKLESS_RETURN_NOT_OK(g.AddEdge(v, (v + 1) % 8));
      FLINKLESS_RETURN_NOT_OK(g.AddEdge(v, (v + 3) % 8));
    }
    return g;
  }
  if (name == "twitter") {
    Rng rng(7);
    return graph::Rmat(12, 8, &rng);
  }
  return Status::InvalidArgument("unknown graph '" + name +
                                 "' (demo|twitter|cycle)");
}

void InteractiveLoop(viz::Playback<viz::RanksFrame>* playback) {
  std::cout << "interactive controls: n=next  b=backward  p=play to end  "
               "q=quit\n\n";
  std::cout << viz::RenderRanks(playback->Current()) << "\n";
  std::string line;
  for (;;) {
    std::cout << "[frame " << playback->position() + 1 << "/"
              << playback->size() << "] > " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line == "q") break;
    if (line == "b") {
      playback->StepBackward();
      std::cout << viz::RenderRanks(playback->Current()) << "\n";
    } else if (line == "p") {
      playback->Play();
      while (playback->StepForward()) {
        std::cout << viz::RenderRanks(playback->Current()) << "\n";
      }
    } else {
      if (playback->StepForward()) {
        std::cout << viz::RenderRanks(playback->Current()) << "\n";
      } else {
        std::cout << "(at the last frame)\n";
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  std::string* graph_name = flags.String("graph", "demo",
                                         "demo|twitter|cycle");
  std::string* fail_spec = flags.String(
      "fail", "5:1", "failure schedule iter:parts[;iter:parts], '' = none");
  std::string* strategy = flags.String(
      "strategy", "optimistic",
      "optimistic|rollback|confined|confined-log|restart|none");
  std::string* compensation_name = flags.String(
      "compensation", "redistribute", "redistribute|uniform|full");
  int64_t* partitions = flags.Int64("partitions", 4, "degree of parallelism");
  int64_t* threads = flags.Int64(
      "threads", 1, "executor worker threads (1 = serial, 0 = all cores)");
  int64_t* max_iterations = flags.Int64("max-iterations", 40,
                                        "superstep cap");
  int64_t* delay_ms =
      flags.Int64("delay-ms", 0, "pause between frames (slow-motion demo)");
  bool* interactive =
      flags.Bool("interactive", false, "step with n/b/p/q instead of playing");
  std::string* trace_path = flags.String(
      "trace", "",
      "write an execution trace here (.json = Chrome/Perfetto, .ndjson)");
  bool* cache = flags.Bool(
      "cache", true, "reuse loop-invariant shuffles/indexes across supersteps");
  bool* msglog = flags.Bool(
      "msglog", false,
      "log outbound shuffle messages per superstep (confined-log recovery "
      "replays them; implied by --strategy=confined-log)");
  bool* batch = flags.Bool(
      "batch", true,
      "columnar batch execution on the shuffle/join/reduce hot path "
      "(false = record-at-a-time; results are byte-identical)");
  std::string* simd = flags.String(
      "simd", "auto",
      "SIMD tier for the columnar kernels: auto|off|sse4.2|avx2|max "
      "(results are byte-identical at every tier)");
  int64_t* mem_budget = flags.Int64(
      "mem-budget", 0,
      "byte budget for cached artifacts; cold entries spill to stable "
      "storage beyond it (0 = unlimited)");
  std::string* metrics_out = flags.String(
      "metrics-out", "",
      "write a metrics v2 export here (.prom = Prometheus text, else "
      "NDJSON)");
  bool* profile = flags.Bool(
      "profile", false,
      "trace the run and print the critical-path profile (implied by "
      "--trace)");
  bool* baseline = flags.Bool(
      "baseline", false,
      "re-run the job failure-free and report recovery health net of it");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }

  auto graph_or = MakeGraph(*graph_name);
  if (!graph_or.ok()) {
    std::cerr << graph_or.status() << "\n";
    return 1;
  }
  graph::Graph g = std::move(graph_or).ValueOrDie();
  auto failures_or = runtime::FailureSchedule::Parse(*fail_spec);
  if (!failures_or.ok()) {
    std::cerr << failures_or.status() << "\n";
    return 1;
  }
  runtime::FailureSchedule failures = std::move(failures_or).ValueOrDie();

  const int parts = static_cast<int>(*partitions);
  const bool small = g.num_vertices() <= 32;

  algos::PageRankOptions options;
  options.num_partitions = parts;
  options.num_threads = static_cast<int>(*threads);
  options.max_iterations = static_cast<int>(*max_iterations);
  options.converged_tolerance = 1e-6;
  // trace_path/metrics_path stay unset: the demo owns the tracer and sink
  // itself (below) so it can run the profiler and render the dashboard
  // after the run, and writes the export files at the end.
  options.cache_loop_invariant = *cache;
  options.columnar_batch = *batch;
  if (!dataflow::simd::ParseSimdLevel(*simd, &options.simd)) {
    std::cerr << "unknown --simd level '" << *simd << "'\n";
    return 1;
  }
  options.message_log = *msglog || *strategy == "confined-log";
  if (*mem_budget > 0) {
    options.memory_budget_bytes = static_cast<uint64_t>(*mem_budget);
  }
  auto truth = graph::ReferencePageRank(g, options.damping, 1000, 1e-14);

  std::cout << "Optimistic Recovery demo — PageRank (bulk iterations)\n"
            << g.ToString() << ", " << parts << " partitions, strategy "
            << *strategy << ", compensation " << *compensation_name << "\n";
  if (small) std::cout << viz::DescribePartitions(g.num_vertices(), parts);
  for (const auto& event : failures.events()) {
    std::cout << "scheduled failure: " << event.ToString() << "\n";
  }
  std::cout << "\n";

  algos::RankCompensationVariant variant =
      algos::RankCompensationVariant::kRedistributeLostMass;
  if (*compensation_name == "uniform") {
    variant = algos::RankCompensationVariant::kUniformReinit;
  } else if (*compensation_name == "full") {
    variant = algos::RankCompensationVariant::kFullReinit;
  } else if (*compensation_name != "redistribute") {
    std::cerr << "unknown compensation '" << *compensation_name << "'\n";
    return 1;
  }
  algos::FixRanksCompensation compensation(g.num_vertices(), variant);
  // The baseline re-run (below) needs a fresh policy of the same kind, so
  // policy construction is a factory rather than a one-off.
  auto make_policy =
      [&]() -> std::unique_ptr<iteration::FaultTolerancePolicy> {
    if (*strategy == "optimistic") {
      return std::make_unique<core::OptimisticRecoveryPolicy>(&compensation);
    }
    if (*strategy == "rollback") {
      return std::make_unique<core::CheckpointRollbackPolicy>(2);
    }
    if (*strategy == "confined") {
      return std::make_unique<core::ConfinedRollbackPolicy>(2);
    }
    if (*strategy == "confined-log") {
      // Bulk iterations: no checkpoints, the logged messages rebuild the
      // lost partitions exactly.
      return std::make_unique<core::ConfinedLogReplayPolicy>(2);
    }
    if (*strategy == "restart") return std::make_unique<core::RestartPolicy>();
    if (*strategy == "none") {
      return std::make_unique<core::NoFaultTolerancePolicy>();
    }
    return nullptr;
  };
  std::unique_ptr<iteration::FaultTolerancePolicy> policy = make_policy();
  if (policy == nullptr) {
    std::cerr << "unknown strategy '" << *strategy << "'\n";
    return 1;
  }

  runtime::MetricsRegistry metrics;
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.metrics = &metrics;
  env.failures = &failures;
  env.storage = &storage;
  env.job_id = "demo-pagerank";
  // Metrics v2 + tracing: the demo owns the clock, sink, and tracer so the
  // dashboard, profiler, and exports below can read them after the run.
  runtime::SimClock sim_clock;
  env.clock = &sim_clock;
  runtime::CostModel costs;
  env.costs = &costs;
  runtime::MetricsSink sink;
  env.metrics_sink = &sink;
  runtime::Tracer::Options tracer_options;
  tracer_options.clock = &sim_clock;
  runtime::Tracer tracer(tracer_options);
  const bool tracing = *profile || !trace_path->empty();
  if (tracing) env.tracer = &tracer;

  viz::Playback<viz::RanksFrame> playback;
  {
    viz::RanksFrame initial;
    initial.iteration = 0;
    initial.ranks.assign(g.num_vertices(),
                         1.0 / static_cast<double>(g.num_vertices()));
    playback.Record(std::move(initial));
  }

  auto run = algos::RunPageRankWithSnapshots(
      g, options, env, policy.get(), &truth,
      [&](int iteration, const std::vector<double>& ranks,
          const std::vector<int>& lost_partitions, bool failure,
          double l1_diff, int64_t converged) {
        viz::RanksFrame frame;
        frame.iteration = iteration;
        frame.ranks = ranks;
        frame.failure = failure;
        frame.l1_diff = l1_diff;
        frame.converged_vertices = converged;
        frame.lost_vertices = viz::VerticesOfPartitions(
            g.num_vertices(), parts, lost_partitions);
        playback.Record(std::move(frame));
      });
  if (!run.ok()) {
    std::cerr << "job failed: " << run.status() << "\n";
    return 1;
  }

  if (*interactive && small) {
    InteractiveLoop(&playback);
  } else if (small) {
    playback.Rewind();
    std::cout << viz::RenderRanks(playback.Current()) << "\n";
    while (playback.StepForward()) {
      if (*delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(*delay_ms));
      }
      std::cout << viz::RenderRanks(playback.Current()) << "\n";
    }
  } else {
    std::cout << "(large graph: progress tracked via statistics only, as in "
                 "the paper)\n\n";
  }

  // The two GUI plots (bottom corners of Figure 4).
  std::cout << AsciiPlot(metrics.GaugeSeries("converged_vertices"), 8,
                         "vertices converged to true PageRank per "
                         "iteration:")
            << "\n";
  std::cout << AsciiPlot(metrics.GaugeSeries("convergence_metric"), 8,
                         "L1 norm of difference between consecutive "
                         "estimates:")
            << "\n";

  if (*mem_budget > 0) {
    uint64_t spills = 0, unspills = 0, spilled_bytes = 0, peak = 0;
    for (const auto& it : metrics.iterations()) {
      spills += it.spills;
      unspills += it.unspills;
      spilled_bytes += it.spilled_bytes;
      peak = std::max(peak, it.peak_resident_bytes);
    }
    std::cout << "memory budget " << *mem_budget << " bytes: spills="
              << spills << " unspills=" << unspills << " spilled_bytes="
              << spilled_bytes << " peak_resident_bytes=" << peak << "\n";
  }

  // Metrics v2 rollup: cache effectiveness, the batch/row execution mix,
  // and the per-partition dashboard.
  runtime::MetricsSnapshot msnap = sink.Collect();
  std::cout << "cache: hits=" << msnap.CounterTotal(runtime::metric::kCacheHits)
            << " builds=" << msnap.CounterTotal(runtime::metric::kCacheBuilds)
            << " invalidations="
            << msnap.CounterTotal(runtime::metric::kCacheInvalidations)
            << " records_not_reshuffled="
            << msnap.CounterTotal(
                   runtime::metric::kCacheRecordsNotReshuffled)
            << "\n"
            << "exec: batch_ops="
            << msnap.CounterTotal(runtime::metric::kExecBatchOps)
            << " row_fallback_ops="
            << msnap.CounterTotal(runtime::metric::kExecRowFallbackOps)
            << " records=" << msnap.CounterTotal(runtime::metric::kExecRecords)
            << " shuffled="
            << msnap.CounterTotal(runtime::metric::kShuffleFanout) << "\n\n"
            << viz::RenderMetricsDashboard(msnap) << "\n";

  // Recovery health: one block per injected failure. With --baseline the
  // same job runs once more without failures and the window costs are
  // reported net of it ("time lost to the failure" instead of gross cost).
  if (run->failures_recovered > 0) {
    runtime::MetricsRegistry baseline_registry;
    const runtime::MetricsRegistry* baseline_metrics = nullptr;
    if (*baseline) {
      runtime::FailureSchedule no_failures;
      runtime::StableStorage baseline_storage(nullptr, nullptr);
      runtime::SimClock baseline_clock;
      iteration::JobEnv baseline_env;
      baseline_env.clock = &baseline_clock;
      baseline_env.costs = &costs;
      baseline_env.metrics = &baseline_registry;
      baseline_env.failures = &no_failures;
      baseline_env.storage = &baseline_storage;
      baseline_env.job_id = "demo-pagerank-baseline";
      std::unique_ptr<iteration::FaultTolerancePolicy> baseline_policy =
          make_policy();
      auto base_run =
          algos::RunPageRank(g, options, baseline_env, baseline_policy.get());
      if (base_run.ok()) {
        baseline_metrics = &baseline_registry;
      } else {
        std::cerr << "baseline run failed: " << base_run.status() << "\n";
      }
    }
    std::cout << runtime::RenderRecoveryHealth(
                     runtime::ComputeRecoveryHealth(metrics, baseline_metrics))
              << "\n";
  }

  if (tracing) {
    std::cout << runtime::ProfileReport::FromSnapshot(tracer.Flush())
                     .RenderText()
              << "\n";
  }
  if (!trace_path->empty()) {
    if (Status s = runtime::WriteTraceFile(tracer, *trace_path); !s.ok()) {
      std::cerr << "trace export failed: " << s << "\n";
    }
  }
  if (!metrics_out->empty()) {
    if (Status s = runtime::WriteMetricsFile(metrics, sink, *metrics_out);
        !s.ok()) {
      std::cerr << "metrics export failed: " << s << "\n";
    }
  }

  double max_err = 0;
  for (size_t v = 0; v < truth.size(); ++v) {
    max_err = std::max(max_err, std::abs(run->ranks[v] - truth[v]));
  }
  std::cout << "converged=" << (run->converged ? "yes" : "no") << " after "
            << run->iterations << " iterations, " << run->failures_recovered
            << " failures recovered, max |rank - true| = " << max_err << "\n";
  return 0;
}
