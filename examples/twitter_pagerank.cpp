// The "larger graph derived from real-world data" scenario of paper §3.1 as
// a standalone application: PageRank on a Twitter-like power-law graph with
// failures injected mid-run, recovered optimistically, tracked through
// statistics only (the paper does not visualize the large graph either).
//
//   ./examples/twitter_pagerank
//   ./examples/twitter_pagerank --scale=13 --edge-factor=8 --fail=8:3
//   ./examples/twitter_pagerank --strategy=rollback --checkpoint-interval=4

#include <cmath>
#include <iostream>

#include "algos/pagerank.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/stable_storage.h"

using namespace flinkless;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  FlagParser flags;
  int64_t* scale = flags.Int64("scale", 13, "RMAT scale (2^scale vertices)");
  int64_t* edge_factor = flags.Int64("edge-factor", 8, "edges per vertex");
  int64_t* partitions = flags.Int64("partitions", 8, "degree of parallelism");
  int64_t* max_iterations = flags.Int64("max-iterations", 30,
                                        "superstep cap");
  int64_t* checkpoint_interval =
      flags.Int64("checkpoint-interval", 2, "for --strategy=rollback");
  int64_t* seed = flags.Int64("seed", 2026, "graph generator seed");
  std::string* fail_spec =
      flags.String("fail", "8:3", "failure schedule iter:parts[;...]");
  std::string* strategy = flags.String(
      "strategy", "optimistic", "optimistic|rollback|restart|none");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }

  Rng rng(static_cast<uint64_t>(*seed));
  graph::Graph g =
      graph::Rmat(static_cast<int>(*scale), static_cast<int>(*edge_factor),
                  &rng);
  std::cout << "graph: " << g.ToString() << " (" << g.CountDangling()
            << " dangling vertices)\n";

  auto failures_or = runtime::FailureSchedule::Parse(*fail_spec);
  if (!failures_or.ok()) {
    std::cerr << failures_or.status() << "\n";
    return 1;
  }
  runtime::FailureSchedule failures = std::move(failures_or).ValueOrDie();

  algos::PageRankOptions options;
  options.num_partitions = static_cast<int>(*partitions);
  options.max_iterations = static_cast<int>(*max_iterations);
  options.converged_tolerance = 1e-7;

  std::cout << "computing reference ranks (power iteration)...\n";
  auto truth = graph::ReferencePageRank(g, options.damping, 500, 1e-13);

  algos::FixRanksCompensation compensation(g.num_vertices());
  std::unique_ptr<iteration::FaultTolerancePolicy> policy;
  if (*strategy == "optimistic") {
    policy = std::make_unique<core::OptimisticRecoveryPolicy>(&compensation);
  } else if (*strategy == "rollback") {
    policy = std::make_unique<core::CheckpointRollbackPolicy>(
        static_cast<int>(*checkpoint_interval));
  } else if (*strategy == "restart") {
    policy = std::make_unique<core::RestartPolicy>();
  } else if (*strategy == "none") {
    policy = std::make_unique<core::NoFaultTolerancePolicy>();
  } else {
    std::cerr << "unknown strategy '" << *strategy << "'\n";
    return 1;
  }

  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.storage = &storage;
  env.metrics = &metrics;
  env.failures = &failures;
  env.job_id = "twitter-pagerank";

  runtime::WallTimer wall;
  auto run = algos::RunPageRank(g, options, env, policy.get(), &truth);
  if (!run.ok()) {
    std::cerr << "job failed: " << run.status() << "\n";
    return 1;
  }

  TablePrinter table({"iteration", "converged_vertices", "l1_diff",
                      "messages", "ckpt_bytes", "failure"});
  for (const auto& it : metrics.iterations()) {
    table.Row()
        .Cell(static_cast<int64_t>(it.iteration))
        .Cell(it.Gauge("converged_vertices"))
        .Cell(it.Gauge("convergence_metric"))
        .Cell(it.messages_shuffled)
        .Cell(it.bytes_checkpointed)
        .Cell(it.failure_injected ? "yes" : "");
  }
  table.PrintAscii(std::cout);

  double max_err = 0;
  for (size_t v = 0; v < truth.size(); ++v) {
    max_err = std::max(max_err, std::abs(run->ranks[v] - truth[v]));
  }
  std::cout << "\nstrategy " << policy->name() << ": " << run->iterations
            << " iterations (" << run->supersteps_executed
            << " supersteps), " << run->failures_recovered
            << " failures recovered\n"
            << "wall " << wall.ElapsedMs() << " ms, " << clock.Summary()
            << "\n"
            << "checkpointed " << FormatBytes(storage.bytes_written())
            << ", read back " << FormatBytes(storage.bytes_read()) << "\n"
            << "max |rank - true| = " << max_err << "\n";
  return 0;
}
