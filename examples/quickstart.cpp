// Quickstart: run Connected Components and PageRank on the demo graphs,
// inject a failure into each, and recover optimistically with compensation
// functions — the whole paper in ~100 lines.
//
//   ./examples/quickstart

#include <cstdio>
#include <iostream>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/logging.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // ---------------------------------------------------------------- CC ----
  graph::Graph cc_graph = graph::DemoGraph();
  std::cout << "Connected Components on " << cc_graph.ToString() << "\n";

  std::vector<int64_t> true_labels =
      graph::ReferenceConnectedComponents(cc_graph);

  // Fail partition 0 at the end of iteration 2 (as an attendee clicking a
  // task in the GUI would).
  runtime::FailureSchedule failures(std::vector<runtime::FailureEvent>{{2, {0}}});
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;
  env.job_id = "quickstart-cc";

  algos::FixComponentsCompensation fix_components(&cc_graph);
  core::OptimisticRecoveryPolicy optimistic(&fix_components);

  algos::ConnectedComponentsOptions cc_options;
  cc_options.num_partitions = 4;
  auto cc = algos::RunConnectedComponents(cc_graph, cc_options, env,
                                          &optimistic, &true_labels);
  if (!cc.ok()) {
    std::cerr << "CC failed: " << cc.status() << "\n";
    return 1;
  }
  std::cout << "  converged after " << cc->iterations << " iterations, "
            << cc->failures_recovered << " failure(s) recovered\n";
  bool correct = cc->labels == true_labels;
  std::cout << "  labels match union-find ground truth: "
            << (correct ? "yes" : "NO") << "\n";
  std::cout << "  per-iteration converged vertices:";
  for (const auto& it : metrics.iterations()) {
    std::cout << " " << static_cast<int64_t>(it.Gauge("converged_vertices"))
              << (it.failure_injected ? "*" : "");
  }
  std::cout << "   (* = failure injected + compensated)\n\n";

  // ---------------------------------------------------------------- PR ----
  graph::Graph pr_graph = graph::DemoDirectedGraph();
  std::cout << "PageRank on " << pr_graph.ToString() << "\n";

  algos::PageRankOptions pr_options;
  pr_options.num_partitions = 4;
  pr_options.max_iterations = 60;
  std::vector<double> true_ranks = graph::ReferencePageRank(
      pr_graph, pr_options.damping, 200, 1e-12);

  runtime::FailureSchedule pr_failures(std::vector<runtime::FailureEvent>{{5, {1}}});
  runtime::MetricsRegistry pr_metrics;
  iteration::JobEnv pr_env;
  pr_env.failures = &pr_failures;
  pr_env.metrics = &pr_metrics;
  pr_env.job_id = "quickstart-pagerank";

  algos::FixRanksCompensation fix_ranks(pr_graph.num_vertices());
  core::OptimisticRecoveryPolicy pr_optimistic(&fix_ranks);

  auto pr = algos::RunPageRank(pr_graph, pr_options, pr_env, &pr_optimistic,
                               &true_ranks);
  if (!pr.ok()) {
    std::cerr << "PageRank failed: " << pr.status() << "\n";
    return 1;
  }
  std::cout << "  converged=" << (pr->converged ? "yes" : "no") << " after "
            << pr->iterations << " iterations, " << pr->failures_recovered
            << " failure(s) recovered, final L1 diff = " << pr->final_l1
            << "\n";
  double max_err = 0.0;
  for (size_t v = 0; v < true_ranks.size(); ++v) {
    max_err = std::max(max_err, std::abs(pr->ranks[v] - true_ranks[v]));
  }
  std::cout << "  max |rank - true rank| = " << max_err << "\n";
  std::cout << "  per-iteration L1 diff (note the spike after the failure "
               "at iteration 5):\n   ";
  for (const auto& it : pr_metrics.iterations()) {
    std::printf(" %.2e%s", it.Gauge("convergence_metric"),
                it.failure_injected ? "*" : "");
    if (it.iteration >= 10) break;
  }
  std::cout << "\n";
  return 0;
}
