// JobServer demo (DESIGN.md §16): two Connected Components jobs run
// concurrently on shared runtime services while a client fires point
// lookups at their evolving solution sets. One job suffers an injected
// failure mid-run — the reads keep getting answered from the epoch the
// view pinned when the failure was detected, which is the paper's
// availability story made visible. Afterwards the same dataflow is
// resubmitted and reuses every loop-invariant artifact: zero cache builds.
//
//   ./examples/demo_job_server
//
// Exits nonzero if any served answer is inconsistent or a job diverges
// from the reference labels.

#include <iostream>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "server/job_server.h"

using namespace flinkless;
using dataflow::MakeRecord;

namespace {
constexpr int kParts = 4;
}

int main() {
  SetLogLevel(LogLevel::kWarning);

  Rng rng(2025);
  graph::Graph directed = graph::Rmat(8, 6, &rng);  // 256 vertices
  graph::Graph graph(directed.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : directed.edges()) {
    if (!graph.AddEdge(e.src, e.dst).ok()) return 1;
  }
  auto truth = graph::ReferenceConnectedComponents(graph);

  dataflow::Plan plan = algos::BuildConnectedComponentsPlan();
  dataflow::PartitionedDataset edges = algos::EdgePairs(graph, kParts);
  std::vector<dataflow::Record> labels = algos::InitialLabels(graph);
  algos::FixComponentsCompensation fix(&graph);
  core::OptimisticRecoveryPolicy policy_a(&fix);
  core::OptimisticRecoveryPolicy policy_b(&fix);
  core::OptimisticRecoveryPolicy policy_rerun(&fix);

  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  server::ServerOptions options;
  options.max_concurrent_jobs = 2;
  server::JobServer server(&clock, &costs, &storage, options);

  auto make_spec = [&](const std::string& job_id,
                       iteration::FaultTolerancePolicy* policy,
                       const std::string& failures) {
    server::JobSpec spec;
    spec.job_id = job_id;
    spec.dataflow_id = "cc";
    spec.plan = &plan;
    spec.bindings["edges"] = &edges;
    spec.exec.num_partitions = kParts;
    spec.policy = policy;
    if (!failures.empty()) {
      auto parsed = runtime::FailureSchedule::Parse(failures);
      if (!parsed.ok()) return spec;
      spec.failures = *parsed;
    }
    spec.delta.max_iterations = 40;
    spec.initial_solution = labels;
    spec.initial_workset =
        dataflow::PartitionedDataset::HashPartitioned(labels, {0}, kParts);
    return spec;
  };

  // Job A loses partition 1 in superstep 3; job B is healthy. Both share
  // the dataflow id "cc" — A claims the warm cache slot, B (submitted while
  // A is live) runs on a private cache. The faulty job goes first so its
  // failure-detection service point still finds queued lookups: those are
  // the reads answered mid-recovery from the pinned pre-failure epoch.
  std::cout << "submit: cc-faulty  (dataflow cc, fails 3:1)\n"
            << "submit: cc-healthy (dataflow cc)\n";
  if (!server.Submit(make_spec("cc-faulty", &policy_b, "3:1")).ok()) return 1;
  if (!server.Submit(make_spec("cc-healthy", &policy_a, "")).ok()) return 1;

  int pump = 0;
  bool more = true;
  while (more) {
    for (int64_t v = 0; v < 6; ++v) {
      if (!server.EnqueueLookup("cc-healthy", MakeRecord(v)).ok()) return 1;
      if (!server.EnqueueLookup("cc-faulty", MakeRecord(v)).ok()) return 1;
    }
    more = server.Pump();
    ++pump;
    if (pump > 200) {
      std::cerr << "server did not drain\n";
      return 1;
    }
    uint64_t answers = 0;
    uint64_t during_recovery = 0;
    int epoch = -1;
    for (const server::LookupAnswer& a : server.TakeAnswers()) {
      if (!a.found) {
        std::cerr << "lookup missed key " << a.key[0].AsInt64() << "\n";
        return 1;
      }
      ++answers;
      if (a.during_recovery) ++during_recovery;
      if (a.job_id == "cc-faulty") epoch = a.epoch;
    }
    std::cout << "pump " << pump << ": answered " << answers;
    if (epoch >= 0) std::cout << " (cc-faulty epoch " << epoch << ")";
    if (during_recovery > 0) {
      std::cout << " — " << during_recovery
                << " served mid-recovery from the pinned epoch";
    }
    std::cout << "\n";
  }

  if (server.answered_during_recovery() == 0) {
    std::cerr << "expected reads to be served mid-recovery\n";
    return 1;
  }

  for (const std::string job_id : {"cc-faulty", "cc-healthy"}) {
    auto report = server.Report(job_id);
    if (!report.ok() || !report->status.ok() || !report->converged) {
      std::cerr << job_id << " did not converge\n";
      return 1;
    }
    auto solution = server.FinalSolution(job_id);
    if (!solution.ok()) return 1;
    for (int64_t v = 0; v < graph.num_vertices(); ++v) {
      const dataflow::Record* entry = (*solution)->Lookup(MakeRecord(v));
      if (entry == nullptr || (*entry)[1].AsInt64() != truth[v]) {
        std::cerr << job_id << " diverged from reference at vertex " << v
                  << "\n";
        return 1;
      }
    }
    std::cout << "done: " << job_id << " converged after "
              << report->supersteps_executed << " supersteps ("
              << report->failures_recovered << " failure(s) recovered, "
              << report->cache_builds << " cache builds)\n";
  }
  std::cout << "reads answered during recovery: "
            << server.answered_during_recovery() << "\n";

  // Resubmit the same dataflow: the warm slot serves every loop-invariant
  // artifact — zero cache builds on the re-run.
  std::cout << "resubmit: cc-rerun (dataflow cc)\n";
  if (!server.Submit(make_spec("cc-rerun", &policy_rerun, "")).ok()) return 1;
  if (!server.RunToCompletion().ok()) return 1;
  auto rerun = server.Report("cc-rerun");
  if (!rerun.ok() || !rerun->converged) return 1;
  std::cout << "done: cc-rerun converged, cache slot reused="
            << (rerun->cache_slot_reused ? "yes" : "no")
            << ", cache builds=" << rerun->cache_builds << "\n";
  if (!rerun->cache_slot_reused || rerun->cache_builds != 0) {
    std::cerr << "expected a warm-cache re-run with zero builds\n";
    return 1;
  }
  std::cout << "ok\n";
  return 0;
}
